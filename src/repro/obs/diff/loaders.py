"""Artifact loading + normalization for the run-comparison engine.

Every observability artifact the repo produces is a different view of
one run; to diff two of them they must first agree on a shape.  This
module canonicalizes each supported artifact kind into the same
normalized form — a list of *runs*, each carrying keyed series grouped
into named **dimensions** (unit-tagged ``{key: value}`` maps whose
values are exact binary floats):

========================  =====================================================
kind                      source document
========================  =====================================================
``analyze``               flight-recorder summary (``repro analyze --json``,
                          schema ``repro.analyze/1``) — or a raw trace
                          (``--trace`` output), which is analyzed on the fly
``critical-path``         ``repro critical-path --json``
                          (schema ``repro.critical-path/1``)
``prof``                  self-profiler summary (``repro profile --json``,
                          schema ``repro.prof/1``)
``bench``                 one entry of ``BENCH_simulator.json``
                          (schema ``repro.bench/1``; the file is an array —
                          pick an entry by index)
``series``                time-resolved telemetry (``--series-out`` output,
                          schema ``repro.series/1``)
========================  =====================================================

Only *additive* quantities become dimensions (bytes, seconds, counts):
those are the ones whose per-key deltas can telescope to the total
delta.  Ratios like events/s are recomputed by the explainer from the
additive parts.

Unknown or mismatched schemas raise :class:`DiffError` with a one-line
actionable message *before* any output is produced — a diff across
schema versions is refused, never half-rendered.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Optional, Union

__all__ = [
    "DiffError",
    "artifact_from_analyze_summary",
    "artifact_from_bench_entry",
    "artifact_from_critical_path",
    "artifact_from_prof_summary",
    "artifact_from_series_doc",
    "load_artifact",
]

_PathLike = Union[str, pathlib.Path]

#: Schemas this engine understands, mapped to their normalized kind.
_SCHEMA_KINDS = {
    "repro.analyze/1": "analyze",
    "repro.critical-path/1": "critical-path",
    "repro.prof/1": "prof",
    "repro.bench/1": "bench",
    "repro.series/1": "series",
}


class DiffError(Exception):
    """A user-facing, one-line refusal (unknown schema, kind mismatch,
    unreadable artifact).  The CLI prints ``error: <message>`` and exits
    nonzero without emitting any partial output."""


def _series(run: dict, name: str, unit: str, values: dict) -> None:
    """Attach one dimension to a normalized run (empty series are kept:
    an empty-vs-populated pair must still diff, as all-new keys)."""
    run["series"][name] = {"unit": unit, "values": dict(values)}


def _new_run(label: str) -> dict:
    return {"label": label, "series": {}}


# -- analyze summaries ---------------------------------------------------------

def _normalize_analyze_run(run: dict) -> dict:
    out = _new_run(run.get("label", "run"))
    att = run.get("attribution", {})
    metered = att.get("metered")
    flows = att.get("flows_by_cause", {})
    if metered is not None:
        _series(out, "bytes.by_cause", "B", metered.get("by_cause", {}))
        _series(out, "bytes.by_tag", "B", metered.get("by_tag", {}))
    else:
        _series(out, "bytes.by_cause", "B",
                {c: st.get("bytes", 0.0) for c, st in flows.items()})
    _series(out, "flows.by_cause", "count",
            {c: st.get("flows", 0) for c, st in flows.items()})
    walls: dict = {}
    for tl in run.get("phases", {}).get("migrations", []):
        key = f"{tl['vm']}#{tl['attempt']}"
        walls[key] = tl["end_s"] - tl["start_s"]
    _series(out, "sim.wall.migrations", "s", walls)
    by_resource: dict = {}
    for cp in run.get("critical_path") or []:
        for row in cp.get("by_resource", []):
            key = row["resource"]
            by_resource[key] = by_resource.get(key, 0.0) + row["seconds"]
    if by_resource:
        _series(out, "critical.by_resource", "s", by_resource)
    return out


def artifact_from_analyze_summary(summary: dict, source: str) -> dict:
    """Normalize a flight-recorder summary (``repro.analyze/1``)."""
    return {
        "kind": "analyze",
        "source": source,
        "runs": [_normalize_analyze_run(r) for r in summary.get("runs", [])],
    }


# -- critical-path documents ---------------------------------------------------

def artifact_from_critical_path(doc: dict, source: str) -> dict:
    """Normalize a ``repro critical-path --json`` document."""
    runs = []
    for run in doc.get("runs", []):
        out = _new_run(run.get("label", "run"))
        by_resource: dict = {}
        walls: dict = {}
        for att in run.get("attempts", []):
            walls[f"{att['vm']}#{att['attempt']}"] = att["wall_s"]
            for row in att.get("by_resource", []):
                key = row["resource"]
                by_resource[key] = by_resource.get(key, 0.0) + row["seconds"]
        _series(out, "critical.by_resource", "s", by_resource)
        _series(out, "sim.wall.migrations", "s", walls)
        runs.append(out)
    return {"kind": "critical-path", "source": source, "runs": runs}


# -- profiler summaries --------------------------------------------------------

def _flatten_prof_tree(tree: list, prefix: str, out: dict) -> None:
    for node in tree:
        path = f"{prefix}/{node['name']}" if prefix else node["name"]
        out[path] = out.get(path, 0.0) + node.get("exclusive_s", 0.0)
        _flatten_prof_tree(node.get("children", []), path, out)


def artifact_from_prof_summary(summary: dict, source: str) -> dict:
    """Normalize a self-profiler summary (``repro.prof/1``)."""
    if not summary.get("enabled", False):
        raise DiffError(
            f"profile summary in {source} was recorded with profiling "
            "disabled — re-run with --profile (or repro profile --json)")
    run = _new_run("profile")
    wall: dict = {}
    _flatten_prof_tree(summary.get("tree", []), "", wall)
    _series(run, "host.wall.by_scope", "s", wall)
    _series(run, "work.counters", "count", summary.get("counters", {}))
    return {"kind": "prof", "source": source, "runs": [run]}


# -- benchmark trajectory entries ----------------------------------------------

def artifact_from_bench_entry(entry: dict, source: str) -> dict:
    """Normalize one ``BENCH_simulator.json`` entry (``repro.bench/1``)."""
    label = entry.get("git") or entry.get("timestamp") or "entry"
    run = _new_run(str(label))
    wall: dict = {}
    events: dict = {}
    scope_wall: dict = {}
    counters: dict = {}
    for sc in entry.get("scenarios", []):
        name = sc.get("name", "scenario")
        wall[name] = sc.get("wall_s", 0.0)
        if sc.get("events") is not None:
            events[name] = sc["events"]
        profile = sc.get("profile")
        if profile:
            for path, secs in profile.get("wall_s", {}).items():
                scope_wall[f"{name}/{path}"] = secs
            for counter, value in profile.get("counters", {}).items():
                counters[f"{name}/{counter}"] = value
    _series(run, "host.wall.by_scenario", "s", wall)
    _series(run, "sim.events.by_scenario", "count", events)
    _series(run, "host.wall.by_scope", "s", scope_wall)
    _series(run, "work.counters", "count", counters)
    return {"kind": "bench", "source": source, "runs": [run]}


# -- time-series documents -----------------------------------------------------

def artifact_from_series_doc(doc: dict, source: str) -> dict:
    """Normalize a time-series document (``repro.series/1``).

    Every sampled point becomes a keyed value (``signal@t`` → value;
    distribution snapshot cells ``signal@t:writes/column`` → count), so
    two recorded curves diff point-for-point: a regression that shifts
    the drain curve shows up as exactly-attributed per-point deltas.
    Rate totals get their own ``series.totals`` dimension.
    """
    if not doc.get("enabled", True):
        raise DiffError(
            f"series document in {source} was recorded with telemetry "
            "disabled — re-run with --series-out")
    runs = []
    for run in doc.get("runs", []):
        out = _new_run(run.get("label", "run"))
        by_signal: dict = {}
        totals: dict = {}
        for name, sig in run.get("signals", {}).items():
            if sig["kind"] == "distribution":
                for snap in sig["snapshots"]:
                    t = snap["t"]
                    for wc, column, count in snap["cells"]:
                        by_signal[f"{name}@{t:g}:{wc}/{column}"] = count
                continue
            for t, value in sig["points"]:
                by_signal[f"{name}@{t:g}"] = value
            if sig["kind"] == "rate":
                totals[name] = sig["total"]
        _series(out, "series.by_signal", "value", by_signal)
        _series(out, "series.totals", "value", totals)
        runs.append(out)
    return {"kind": "series", "source": source, "runs": runs}


# -- file loading --------------------------------------------------------------

def _looks_like_trace(data: object) -> bool:
    if isinstance(data, dict) and "traceEvents" in data:
        return True
    return (isinstance(data, list) and bool(data)
            and all(isinstance(e, dict) and "ph" in e for e in data[:16]))


def _read_json(path: pathlib.Path) -> Any:
    try:
        text = path.read_text()
    except OSError as exc:
        raise DiffError(f"cannot read {path}: {exc}") from exc
    try:
        if path.suffix == ".jsonl":
            return [json.loads(line) for line in text.splitlines()
                    if line.strip()]
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise DiffError(f"{path} is not valid JSON: {exc}") from exc


def load_artifact(path: _PathLike, entry: Optional[int] = None) -> dict:
    """Load + normalize one artifact file of any supported kind.

    ``entry`` selects an entry of a ``BENCH_simulator.json`` array
    (negative indices count from the end, default ``-1``); it is
    rejected for single-document artifacts.
    """
    path = pathlib.Path(path)
    data = _read_json(path)
    source = path.name

    if isinstance(data, list) and data and isinstance(data[0], dict) \
            and data[0].get("schema") == "repro.bench/1":
        idx = -1 if entry is None else entry
        try:
            picked = data[idx]
        except IndexError:
            raise DiffError(
                f"{source} has {len(data)} entries; entry {idx} is out of "
                "range") from None
        return artifact_from_bench_entry(
            picked, f"{source}[{idx if idx >= 0 else len(data) + idx}]")

    if entry is not None:
        raise DiffError(
            f"--entry only applies to BENCH trajectory files; {source} is "
            "a single-document artifact")

    if _looks_like_trace(data):
        from repro.obs.analyze import analyze_events

        events = data.get("traceEvents", []) if isinstance(data, dict) else data
        summary = analyze_events(events)
        if not summary["runs"]:
            raise DiffError(
                f"{source} contains no recorded runs — record the trace "
                "with --trace (add --causal for critical-path sections)")
        return artifact_from_analyze_summary(summary, source)

    if not isinstance(data, dict):
        raise DiffError(f"{source} is not a recognized repro artifact")
    schema = data.get("schema")
    kind = _SCHEMA_KINDS.get(schema)
    if kind is None:
        raise DiffError(
            f"{source} has unsupported schema {schema!r} — this engine "
            f"understands {sorted(_SCHEMA_KINDS)} (is it from a newer or "
            "older version?)")
    if kind == "analyze":
        return artifact_from_analyze_summary(data, source)
    if kind == "critical-path":
        return artifact_from_critical_path(data, source)
    if kind == "prof":
        return artifact_from_prof_summary(data, source)
    if kind == "series":
        return artifact_from_series_doc(data, source)
    return artifact_from_bench_entry(data, source)
