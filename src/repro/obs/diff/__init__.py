"""``repro.obs.diff`` — the run-comparison engine.

The rest of the observability stack explains *one* run exhaustively;
this package answers the comparative questions: given two artifacts of
the same kind (two flight-recorder summaries, two critical-path
documents, two profiler trees, or two ``BENCH_simulator.json``
entries), attribute the delta — simulated time, bytes, host wall-clock,
work counters — to specific keys, with the same telescoping exactness
discipline as the byte attribution and critical-path tiling: per-key
contributions sum to the total delta exactly, checked on rationals.

Layering: this package may import from ``repro.obs.analyze`` /
``repro.obs.causal`` / ``repro.obs.prof``, but nothing in ``repro.obs``
may import it back (enforced by simlint S502).
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional

from repro.obs.diff.delta import dimension_delta, merge_conservation
from repro.obs.diff.explain import explain_pair
from repro.obs.diff.loaders import (
    DiffError,
    artifact_from_analyze_summary,
    artifact_from_bench_entry,
    artifact_from_critical_path,
    artifact_from_prof_summary,
    artifact_from_series_doc,
    load_artifact,
)
from repro.obs.diff.report import render_diff_html, render_diff_text

__all__ = [
    "SCHEMA",
    "DiffError",
    "artifact_from_analyze_summary",
    "artifact_from_bench_entry",
    "artifact_from_critical_path",
    "artifact_from_prof_summary",
    "artifact_from_series_doc",
    "diff_artifacts",
    "diff_files",
    "diff_json",
    "dimension_delta",
    "explain_pair",
    "load_artifact",
    "merge_conservation",
    "render_diff_html",
    "render_diff_text",
]

SCHEMA = "repro.diff/1"


def _pair_runs(runs_a: list, runs_b: list) -> tuple:
    """Pair runs across the two artifacts.

    Primary pairing is by label (a fig2 summary labels runs by
    approach, so ``our-approach`` diffs against ``our-approach``).
    When no labels coincide but both sides carry the same number of
    runs, fall back to positional pairing — that is the common case of
    comparing the same experiment re-recorded under a different kernel
    or git revision, where labels may legitimately differ.
    """
    by_label_b = {}
    for run in runs_b:
        by_label_b.setdefault(run["label"], run)
    pairs = []
    matched_b = set()
    for run in runs_a:
        other = by_label_b.get(run["label"])
        if other is not None and id(other) not in matched_b:
            pairs.append((run, other))
            matched_b.add(id(other))
    if not pairs and len(runs_a) == len(runs_b):
        return list(zip(runs_a, runs_b)), [], []
    unmatched_a = [r["label"] for r in runs_a
                   if not any(p[0] is r for p in pairs)]
    unmatched_b = [r["label"] for r in runs_b if id(r) not in matched_b]
    return pairs, unmatched_a, unmatched_b


def diff_artifacts(a: dict, b: dict) -> dict:
    """The full diff document for two normalized artifacts.

    Raises :class:`DiffError` if the kinds differ — an analyze summary
    cannot be attributed against a profiler tree; the dimensions do not
    correspond.
    """
    if a["kind"] != b["kind"]:
        raise DiffError(
            f"cannot diff {a['kind']} artifact ({a['source']}) against "
            f"{b['kind']} artifact ({b['source']}) — record both sides "
            "the same way")
    pairs_raw, unmatched_a, unmatched_b = _pair_runs(a["runs"], b["runs"])
    pairs = []
    zero = True
    for run_a, run_b in pairs_raw:
        names = sorted(set(run_a["series"]) | set(run_b["series"]))
        dimensions = []
        for name in names:
            sa = run_a["series"].get(name)
            sb = run_b["series"].get(name)
            unit = (sa or sb)["unit"]
            dimensions.append(dimension_delta(
                name, unit,
                sa["values"] if sa else {},
                sb["values"] if sb else {},
            ))
        explained = explain_pair(dimensions)
        if any(d["delta"] != 0 or d["new_keys"] or d["vanished_keys"]
               or any(c["delta"] != 0 for c in d["contributions"])
               for d in dimensions):
            zero = False
        pairs.append({
            "label": run_a["label"],
            "a_label": run_a["label"],
            "b_label": run_b["label"],
            "dimensions": dimensions,
            "headline": explained["headline"],
            "findings": explained["findings"],
        })
    return {
        "schema": SCHEMA,
        "kind": a["kind"],
        "a": {"source": a["source"]},
        "b": {"source": b["source"]},
        "pairs": pairs,
        "unmatched_a": unmatched_a,
        "unmatched_b": unmatched_b,
        "conservation_ok": all(
            merge_conservation(p["dimensions"]) for p in pairs),
        "zero_delta": zero and bool(pairs),
    }


def diff_files(path_a: "str | pathlib.Path",
               path_b: "str | pathlib.Path",
               entry_a: Optional[int] = None,
               entry_b: Optional[int] = None) -> dict:
    """Load, normalize and diff two artifact files.

    When the *same* BENCH trajectory file is given twice with no
    explicit entries, default to its last two entries (``-2`` vs
    ``-1``) — "what changed since the previous benchmark run".
    """
    import pathlib

    if (entry_a is None and entry_b is None
            and pathlib.Path(path_a).resolve()
            == pathlib.Path(path_b).resolve()):
        probe = load_artifact(path_a)
        if probe["kind"] == "bench":
            return diff_artifacts(load_artifact(path_a, entry=-2),
                                  load_artifact(path_b, entry=-1))
        return diff_artifacts(probe, load_artifact(path_b))
    return diff_artifacts(load_artifact(path_a, entry=entry_a),
                          load_artifact(path_b, entry=entry_b))


def diff_json(doc: dict) -> str:
    """Deterministic encoding of a diff document (sorted keys, no
    whitespace variance) — byte-identical across invocations."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
