"""The delta attributor: decompose a run-to-run delta exactly.

Given two keyed series of the same dimension (bytes by cause, seconds
by resource class, work-counter values by name, ...), decompose

``Δtotal = total(B) - total(A)``

into per-key contributions ``Δ_k = B_k - A_k``.  Both totals are the
exact rational sums of their series and every contribution is computed
on :class:`fractions.Fraction` built from the artifacts' exact binary
floats, so the telescoping conservation invariant

``Σ_k Δ_k == Δtotal``   (exactly, no tolerance)

holds by construction and is *checked*, the same discipline as the byte
attribution (PR 3) and the critical-path tiling (PR 4).  A failure can
only mean the attributor itself is broken, never float noise.

Keys present on one side only are flagged ``new`` / ``vanished`` —
their whole value is their contribution — and contributions are ranked
by absolute delta so the top-N contributors per dimension read straight
off the list.
"""

from __future__ import annotations

# simlint: exact -- per-key contributions must sum to the total delta
from fractions import Fraction
from typing import Mapping, Optional

__all__ = ["dimension_delta", "merge_conservation"]


def _status(in_a: bool, in_b: bool, delta: Fraction) -> str:
    if not in_a:
        return "new"
    if not in_b:
        return "vanished"
    return "unchanged" if delta == 0 else "changed"


def dimension_delta(name: str, unit: str,
                    a: Mapping[str, float], b: Mapping[str, float]) -> dict:
    """The full delta block for one dimension.

    ``a`` and ``b`` map keys to exact binary floats (bytes, seconds or
    integer counts as emitted by the artifacts).  Returned numbers are
    floats for JSON; the conservation verdict is computed on exact
    rationals before any rounding.
    """
    keys = sorted(set(a) | set(b))
    total_a = Fraction(0)
    total_b = Fraction(0)
    contributions = []
    for key in keys:
        fa = Fraction(a[key]) if key in a else Fraction(0)
        fb = Fraction(b[key]) if key in b else Fraction(0)
        total_a += fa
        total_b += fb
        delta = fb - fa
        contributions.append({
            "key": key,
            "a": float(fa),
            "b": float(fb),
            "delta": float(delta),
            "_delta": delta,
            "status": _status(key in a, key in b, delta),
        })
    total_delta = total_b - total_a
    contribution_sum = sum((c["_delta"] for c in contributions), Fraction(0))
    abs_delta = sum((abs(c["_delta"]) for c in contributions), Fraction(0))
    # Rank by |Δ| descending, key ascending for ties — deterministic.
    contributions.sort(key=lambda c: (-abs(c["_delta"]), c["key"]))
    for rank, c in enumerate(contributions, start=1):
        c["rank"] = rank
        # Share of the *gross* movement, so opposite-sign contributions
        # (one cause grew, another shrank) both register even when the
        # net Δtotal is small or zero.
        c["share"] = float(abs(c["_delta"]) / abs_delta) if abs_delta else 0.0
        del c["_delta"]
    ratio: Optional[float] = float(total_b / total_a) if total_a != 0 else None
    return {
        "name": name,
        "unit": unit,
        "total_a": float(total_a),
        "total_b": float(total_b),
        "delta": float(total_delta),
        "ratio": ratio,
        "new_keys": sorted(k for k in b if k not in a),
        "vanished_keys": sorted(k for k in a if k not in b),
        "contributions": contributions,
        "conservation": {
            "exact": contribution_sum == total_delta,
            "delta": float(total_delta),
            "contribution_sum": float(contribution_sum),
            "residual": float(abs(contribution_sum - total_delta)),
        },
    }


def merge_conservation(dimensions: list) -> bool:
    """True iff every dimension's contributions sum exactly to its Δtotal."""
    return all(d["conservation"]["exact"] for d in dimensions)
