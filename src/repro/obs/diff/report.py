"""Render a diff document: ranked terminal tables and side-by-side HTML.

The HTML view rides on the flight report's design system — same CSS
custom properties, same card layout, same bar helper — so a diff panel
and a flight report read as one family of artifacts.  Positive time/byte
deltas (B costs more than A) render in the alarm hue, negative ones in
the good hue; the ranked table under every chart is the source of truth.
"""

from __future__ import annotations

from html import escape

from repro.obs.analyze.report import _CSS, _bar

__all__ = ["render_diff_text", "render_diff_html"]


def _fmt(value: float, unit: str) -> str:
    if unit == "B":
        for suffix, scale in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
            if abs(value) >= scale:
                return f"{value / scale:.2f} {suffix}"
        return f"{value:.0f} B"
    if unit == "s":
        return f"{value:.4f} s" if abs(value) < 10 else f"{value:.2f} s"
    return f"{value:,.0f}"


def _fmt_delta(value: float, unit: str) -> str:
    if value == 0:
        return "0"
    sign = "+" if value > 0 else "-"
    return sign + _fmt(abs(value), unit)


_STATUS_MARK = {"new": " [new]", "vanished": " [gone]"}


# -- text ----------------------------------------------------------------------

def render_diff_text(doc: dict, top: int = 10) -> str:
    """Fixed-width rendering: per pair, per dimension, the ranked top-N
    contributor rows plus the conservation verdict."""
    out = []
    out.append(f"== repro diff ({doc['kind']}): "
               f"A = {doc['a']['source']}  vs  B = {doc['b']['source']}")
    for pair in doc["pairs"]:
        label = pair["a_label"]
        if pair["b_label"] != pair["a_label"]:
            label += f" vs {pair['b_label']}"
        out.append(f"=== {label}")
        out.append(f"  {pair['headline']}")
        for dim in pair["dimensions"]:
            moved = [c for c in dim["contributions"]
                     if c["status"] != "unchanged"]
            cons = dim["conservation"]
            verdict = ("exact" if cons["exact"]
                       else f"VIOLATED (residual {cons['residual']:g})")
            out.append(
                f"  -- {dim['name']} [{dim['unit']}]: "
                f"{_fmt(dim['total_a'], dim['unit'])} -> "
                f"{_fmt(dim['total_b'], dim['unit'])} "
                f"(delta {_fmt_delta(dim['delta'], dim['unit'])}) — "
                f"conservation {verdict}"
            )
            if not moved:
                out.append("     (no per-key movement)")
                continue
            out.append(
                "     " + "key".ljust(42) + "A".rjust(12) + "B".rjust(12)
                + "delta".rjust(13) + "share".rjust(8)
            )
            for c in moved[:top]:
                mark = _STATUS_MARK.get(c["status"], "")
                out.append(
                    "     " + (c["key"] + mark).ljust(42)
                    + _fmt(c["a"], dim["unit"]).rjust(12)
                    + _fmt(c["b"], dim["unit"]).rjust(12)
                    + _fmt_delta(c["delta"], dim["unit"]).rjust(13)
                    + f"{100 * c['share']:.1f}%".rjust(8)
                )
            if len(moved) > top:
                out.append(f"     ... {len(moved) - top} more "
                           f"(--top {len(moved)} to see all)")
        out.append("")
    out.extend(
        f"  unmatched runs in {side}: {', '.join(labels)}"
        for side, labels in (("A", doc["unmatched_a"]),
                             ("B", doc["unmatched_b"]))
        if labels
    )
    status = "exact" if doc["conservation_ok"] else "VIOLATED"
    out.append(f"delta conservation across all dimensions: {status}")
    if doc["zero_delta"]:
        out.append("runs are identical under every compared dimension")
    return "\n".join(out).rstrip()


# -- HTML ----------------------------------------------------------------------

def _dim_panel(dim: dict, top: int) -> str:
    moved = [c for c in dim["contributions"] if c["status"] != "unchanged"]
    head = (
        f"<h3>{escape(dim['name'])} "
        f"<span class='sub'>[{escape(dim['unit'])}] "
        f"{escape(_fmt(dim['total_a'], dim['unit']))} → "
        f"{escape(_fmt(dim['total_b'], dim['unit']))} "
        f"(Δ {escape(_fmt_delta(dim['delta'], dim['unit']))})</span></h3>"
    )
    if not moved:
        return head + "<p class='sub'>no per-key movement</p>"
    shown = moved[:top]
    width, label_w, value_w = 720, 260, 110
    bar_h, gap = 16, 6
    plot_w = width - label_w - value_w
    vmax = max(abs(c["delta"]) for c in shown) or 1.0
    mid = label_w + plot_w / 2
    height = len(shown) * (bar_h + gap) + 4
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        f'aria-label="delta by key ({escape(dim["name"])})">',
        f'<line x1="{mid:.1f}" y1="0" x2="{mid:.1f}" y2="{height - 2}" '
        f'stroke="var(--axis)" stroke-width="1"/>',
    ]
    for i, c in enumerate(shown):
        y = i * (bar_h + gap)
        w = (plot_w / 2) * abs(c["delta"]) / vmax
        w = max(w, 1.5)
        x = mid if c["delta"] >= 0 else mid - w
        fill = "var(--critical)" if c["delta"] > 0 else "var(--good)"
        title = (f"{c['key']}: {_fmt(c['a'], dim['unit'])} -> "
                 f"{_fmt(c['b'], dim['unit'])} "
                 f"({_fmt_delta(c['delta'], dim['unit'])})")
        parts.append(
            f'<text x="{label_w - 10}" y="{y + bar_h - 4}" text-anchor="end" '
            f'font-size="11" fill="var(--text-primary)">'
            f"{escape(c['key'])}</text>"
        )
        parts.append(_bar(x, y, w, bar_h, fill, title))
        parts.append(
            f'<text x="{width - value_w + 6}" y="{y + bar_h - 4}" '
            f'font-size="11" fill="var(--text-secondary)">'
            f"{escape(_fmt_delta(c['delta'], dim['unit']))}</text>"
        )
    parts.append("</svg>")
    table = [
        "<details><summary>table view</summary><table>",
        "<tr><th>key</th><th>A</th><th>B</th><th>Δ</th><th>share</th>"
        "<th>status</th></tr>",
    ]
    table.extend(
        f"<tr><td>{escape(c['key'])}</td>"
        f"<td>{escape(_fmt(c['a'], dim['unit']))}</td>"
        f"<td>{escape(_fmt(c['b'], dim['unit']))}</td>"
        f"<td>{escape(_fmt_delta(c['delta'], dim['unit']))}</td>"
        f"<td>{100 * c['share']:.1f}%</td>"
        f"<td>{escape(c['status'])}</td></tr>"
        for c in moved
    )
    table.append("</table></details>")
    return head + "".join(parts) + "".join(table)


def render_diff_html(doc: dict, top: int = 10,
                     title: str = "Run diff report") -> str:
    """The diff document as one dependency-free HTML page (flight-report
    styling; A→B delta bars diverging around zero, table under each)."""
    body = []
    sub = (f"{escape(doc['kind'])} · A = {escape(doc['a']['source'])} · "
           f"B = {escape(doc['b']['source'])}")
    for pair in doc["pairs"]:
        label = pair["a_label"]
        if pair["b_label"] != pair["a_label"]:
            label += f" vs {pair['b_label']}"
        body.append('<div class="card">')
        body.append(f"<h2>{escape(label)}</h2>")
        body.append(f"<p class='sub'>{escape(pair['headline'])}</p>")
        body.extend(_dim_panel(dim, top) for dim in pair["dimensions"])
        body.append("</div>")
    body.extend(
        f"<p class='sub'>unmatched runs in {side}: "
        f"{escape(', '.join(labels))}</p>"
        for side, labels in (("A", doc["unmatched_a"]),
                             ("B", doc["unmatched_b"]))
        if labels
    )
    ok = doc["conservation_ok"]
    badge = (
        '<span class="badge good"><span class="dot">✓</span>'
        "every dimension's contributions sum exactly to its Δtotal</span>"
        if ok else
        '<span class="badge bad"><span class="dot">✗</span>'
        "delta conservation VIOLATED — the attributor is broken</span>"
    )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{escape(title)}</title>"
        f"<style>{_CSS}</style></head>"
        "<body class='viz-root'>"
        f"<h1>{escape(title)}</h1>"
        f"<p class='sub'>{sub} · {badge}</p>"
        + "".join(body)
        + "</body></html>\n"
    )
