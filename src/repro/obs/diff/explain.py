"""The regression explainer: join the diffed dimensions into a story.

A delta table per dimension says *what* moved; this module says *why it
reads as a regression (or a win)* by joining the dimensions the way a
human would: start from the headline time dimension (simulated
migration wall, host wall per scenario, host wall per scope — whichever
the artifact kind carries), name its top contributors, then correlate
with the work counters that moved in the same run pair and with
byte-attribution causes that appeared or vanished (``retry.*`` showing
up is a fault-recovery signature, not a protocol change).

Everything is a pure function of the dimension-delta blocks, so the
output is deterministic: identical artifact pairs produce identical
findings, byte for byte.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["explain_pair"]

#: Headline candidates, most meaningful first per artifact kind.
_HEADLINE_DIMS = (
    "sim.wall.migrations",
    "host.wall.by_scenario",
    "critical.by_resource",
    "host.wall.by_scope",
    "bytes.by_cause",
)

#: Relative change below which a total is reported as unchanged.
_FLAT_REL = 0.005


def _fmt_value(value: float, unit: str) -> str:
    if unit == "B":
        for suffix, scale in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
            if abs(value) >= scale:
                return f"{value / scale:.2f} {suffix}"
        return f"{value:.0f} B"
    if unit == "s":
        return f"{value:.3f} s"
    return f"{value:,.0f}"


def _fmt_delta(value: float, unit: str) -> str:
    sign = "+" if value >= 0 else "-"
    return sign + _fmt_value(abs(value), unit)


def _fmt_ratio(ratio: float) -> str:
    return f"{ratio:.2f}x" if ratio < 100 else f"{ratio:.0f}x"


def _verdict(dim: dict) -> str:
    ratio = dim["ratio"]
    if ratio is None:
        return "appeared" if dim["delta"] > 0 else "unchanged"
    if ratio > 1.0 + _FLAT_REL:
        return f"grew {_fmt_ratio(ratio)}"
    if 0 < ratio < 1.0 - _FLAT_REL:
        return f"shrank to {_fmt_ratio(ratio)[:-1]}x"
    if dim["unit"] == "s" and abs(dim["delta"]) > 0:
        return "moved"
    return "unchanged"


def _time_verdict(dim: dict) -> str:
    ratio = dim["ratio"]
    if ratio is None:
        return "appeared"
    if ratio > 1.0 + _FLAT_REL:
        return f"slowed {_fmt_ratio(ratio)}"
    if 0 < ratio < 1.0 - _FLAT_REL:
        return f"sped up {_fmt_ratio(1.0 / ratio)}"
    return "held steady"


def _top_movers(dim: dict, n: int = 3) -> list:
    return [c for c in dim["contributions"][:n] if c["delta"] != 0]


def _dim(dimensions: list, name: str) -> Optional[dict]:
    for dim in dimensions:
        if dim["name"] == name:
            return dim
    return None


def _counter_clause(dimensions: list) -> Optional[str]:
    counters = _dim(dimensions, "work.counters")
    if counters is None:
        return None
    movers = _top_movers(counters, n=2)
    if not movers:
        return None
    parts = []
    for c in movers:
        if c["a"] > 0 and c["b"] > 0:
            parts.append(f"{c['key']} x{c['b'] / c['a']:.1f}")
        else:
            parts.append(f"{c['key']} {_fmt_delta(c['delta'], 'count')}")
    return "correlated with " + ", ".join(parts)


def _cause_clause(dimensions: list) -> Optional[str]:
    causes = _dim(dimensions, "bytes.by_cause")
    if causes is None:
        return None
    if causes["new_keys"]:
        return ("introduced by flows with cause "
                + ", ".join(causes["new_keys"]))
    retry = [c for c in causes["contributions"]
             if c["key"].startswith("retry.") and c["delta"] > 0]
    if retry:
        return ("with " + ", ".join(
            f"{c['key']} {_fmt_delta(c['delta'], 'B')}" for c in retry[:2]))
    return None


def explain_pair(dimensions: list) -> dict:
    """``{"headline": str, "findings": [...]}`` for one diffed run pair.

    The headline joins the leading time dimension's verdict with its top
    contributor, the strongest-moving work counters and any new or grown
    ``retry.*`` byte causes.  ``findings`` carries one entry per
    dimension that moved at all, ranked-movers included, for programmatic
    consumers (the trajectory gate, ``compare --diff``).
    """
    findings = []
    for dim in dimensions:
        movers = _top_movers(dim)
        if not movers and not dim["new_keys"] and not dim["vanished_keys"]:
            continue
        clauses = [
            f"{c['key']} {_fmt_delta(c['delta'], dim['unit'])}"
            f" ({100 * c['share']:.0f}%)"
            for c in movers
        ]
        text = (f"{dim['name']} {_verdict(dim)} "
                f"({_fmt_value(dim['total_a'], dim['unit'])} -> "
                f"{_fmt_value(dim['total_b'], dim['unit'])})")
        if clauses:
            text += ": " + ", ".join(clauses)
        findings.append({
            "dimension": dim["name"],
            "unit": dim["unit"],
            "delta": dim["delta"],
            "ratio": dim["ratio"],
            "top": [{k: c[k] for k in ("key", "a", "b", "delta", "share")}
                    for c in movers],
            "text": text,
        })

    headline = "no differences found"
    for name in _HEADLINE_DIMS:
        dim = _dim(dimensions, name)
        if dim is None or (dim["delta"] == 0 and not dim["new_keys"]
                           and not dim["vanished_keys"]):
            continue
        verdict = (_time_verdict(dim) if dim["unit"] == "s"
                   else _verdict(dim))
        headline = (f"{name} {verdict}: "
                    f"{_fmt_value(dim['total_a'], dim['unit'])} -> "
                    f"{_fmt_value(dim['total_b'], dim['unit'])}")
        movers = _top_movers(dim, n=1)
        if movers:
            c = movers[0]
            headline += (f"; {100 * c['share']:.0f}% of the movement is "
                         f"{c['key']} ({_fmt_delta(c['delta'], dim['unit'])})")
        for clause in (_counter_clause(dimensions), _cause_clause(dimensions)):
            if clause:
                headline += f", {clause}"
        break
    return {"headline": headline, "findings": findings}
