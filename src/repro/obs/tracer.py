"""Structured, simulation-time-stamped event tracing.

Two tracer flavours share one API:

* :class:`Tracer` records typed events (spans, instants, counters, async
  spans) stamped with the simulation clock of the :class:`~repro.simkernel.core.Environment`
  it is bound to.  Events are stored as plain dicts already shaped like the
  Chrome trace-event format, so export (:mod:`repro.obs.export`) is a
  serialization step, not a transformation.
* :class:`NullTracer` is the default installed on every environment.  Every
  method is a no-op returning a shared singleton, so instrumented hot paths
  cost two attribute loads and a predictable branch when tracing is off —
  no allocation, no simulation events, no behavioural difference.

Call sites guard on :attr:`enabled` before building argument dicts::

    tr = self.env.tracer
    if tr.enabled:
        tr.instant("push.stop", cat="storage", tid=f"push:{vm}")

Determinism: events are stamped with simulation time and appended in
execution order.  Because the kernel delivers simultaneous events in a
deterministic order, two identical runs produce identical event lists —
and therefore byte-identical exports.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["NullTracer", "NULL_TRACER", "Tracer"]

#: Microseconds per simulated second (Chrome trace timestamps are in µs).
_US = 1e6


class _NullSpan:
    """Shared no-op context manager returned by every NullTracer method."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is free and side-effect free."""

    __slots__ = ()

    enabled = False
    verbose = False
    #: Causal wait recorder (:mod:`repro.obs.causal`); ``None`` = off.
    causal = None

    def bind(self, env: Any) -> None:
        pass

    def instant(self, name: str, cat: str = "", tid: str = "main",
                args: Optional[dict] = None) -> None:
        pass

    def complete(self, name: str, start: float, end: float, cat: str = "",
                 tid: str = "main", args: Optional[dict] = None) -> None:
        pass

    def counter(self, name: str, values: Optional[dict] = None,
                tid: str = "counters") -> None:
        pass

    def async_span(self, name: str, start: float, end: float, cat: str = "",
                   tid: str = "main", args: Optional[dict] = None) -> None:
        pass

    def span(self, name: str, cat: str = "", tid: str = "main",
             args: Optional[dict] = None) -> _NullSpan:
        return _NULL_SPAN

    def scope(self, label: str) -> _NullSpan:
        return _NULL_SPAN


#: The module-level singleton installed on every fresh Environment.
NULL_TRACER = NullTracer()


class _Span:
    """Context manager recording one complete ("X") event on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_tid", "_args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: str,
                 args: Optional[dict]):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._tid = tid
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = self._tracer.now
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer.complete(
            self._name, self._t0, self._tracer.now,
            cat=self._cat, tid=self._tid, args=self._args,
        )
        return False


class _PidScope:
    """Context manager switching the tracer's current process lane."""

    __slots__ = ("_tracer", "_label", "_prev")

    def __init__(self, tracer: "Tracer", label: str):
        self._tracer = tracer
        self._label = label
        self._prev = tracer._pid_label

    def __enter__(self) -> "_PidScope":
        self._tracer._pid_label = self._label
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer._pid_label = self._prev
        return False


class Tracer:
    """Collects trace events stamped with simulation time.

    Parameters
    ----------
    detail:
        ``"normal"`` records the structural events (spans, batches,
        migration phases, flow lifetimes); ``"full"`` additionally records
        high-frequency kernel events (process resumes, control messages).
    """

    enabled = True
    #: Causal wait recorder; ``None`` until :meth:`enable_causal`.  The
    #: kernel's resume hook checks this attribute, so recording stays free
    #: for plain traced runs.
    causal = None

    def __init__(self, detail: str = "normal"):
        if detail not in ("normal", "full"):
            raise ValueError(f"detail must be 'normal' or 'full', got {detail!r}")
        self.detail = detail
        self.events: list[dict] = []
        self._env: Any = None
        # Chrome pids/tids must be integers; labels get stable small ids in
        # first-use order (deterministic because execution is).
        self._pid_ids: dict[str, int] = {}
        self._tid_ids: dict[str, int] = {}
        self._pid_label = "sim"
        self._async_seq = 0

    # -- clock / identity --------------------------------------------------
    @property
    def verbose(self) -> bool:
        return self.detail == "full"

    @property
    def now(self) -> float:
        """Current simulation time of the bound environment (0 if unbound)."""
        return self._env.now if self._env is not None else 0.0

    def bind(self, env: Any) -> None:
        """Stamp subsequent events with ``env``'s clock."""
        self._env = env

    def enable_causal(self) -> Any:
        """Attach a :class:`~repro.obs.causal.CausalRecorder` (idempotent).

        Once enabled, every nonzero-duration process wait is recorded as a
        ``causal.wait`` instant and cross-process wakeups as Perfetto flow
        arrows — the raw material for critical-path extraction.
        """
        if self.causal is None:
            from repro.obs.causal import CausalRecorder

            self.causal = CausalRecorder(self)
        return self.causal

    def scope(self, label: str) -> _PidScope:
        """Context manager: events inside land in process lane ``label``.

        Used by multi-run experiments (compare, figN sweeps) so each run's
        events form a separate process group in Perfetto.
        """
        return _PidScope(self, label)

    def _pid(self) -> int:
        label = self._pid_label
        pid = self._pid_ids.get(label)
        if pid is None:
            pid = len(self._pid_ids) + 1
            self._pid_ids[label] = pid
        return pid

    def _tid(self, label: str) -> int:
        tid = self._tid_ids.get(label)
        if tid is None:
            tid = len(self._tid_ids) + 1
            self._tid_ids[label] = tid
        return tid

    # -- emission ----------------------------------------------------------
    def instant(self, name: str, cat: str = "", tid: str = "main",
                args: Optional[dict] = None) -> None:
        """A point-in-time event (Chrome ``ph: "i"``)."""
        ev = {
            "name": name,
            "ph": "i",
            "ts": self.now * _US,
            "pid": self._pid(),
            "tid": self._tid(tid),
            "s": "t",
        }
        if cat:
            ev["cat"] = cat
        if args:
            ev["args"] = args
        self.events.append(ev)

    def complete(self, name: str, start: float, end: float, cat: str = "",
                 tid: str = "main", args: Optional[dict] = None) -> None:
        """A duration span recorded once its extent is known (``ph: "X"``)."""
        ev = {
            "name": name,
            "ph": "X",
            "ts": start * _US,
            "dur": max(end - start, 0.0) * _US,
            "pid": self._pid(),
            "tid": self._tid(tid),
        }
        if cat:
            ev["cat"] = cat
        if args:
            ev["args"] = args
        self.events.append(ev)

    def async_span(self, name: str, start: float, end: float, cat: str = "",
                   tid: str = "main", args: Optional[dict] = None) -> None:
        """A span that may overlap others on the same lane (``ph: "b"/"e"``).

        Used for concurrent activities sharing one logical track — network
        flows, overlapping on-demand pulls.  Both halves are emitted
        together (the extent is known at completion), paired by id.
        """
        self._async_seq += 1
        ident = self._async_seq
        pid = self._pid()
        tid = self._tid(tid)
        begin = {
            "name": name,
            "ph": "b",
            "ts": start * _US,
            "pid": pid,
            "tid": tid,
            "id": ident,
            "cat": cat or "async",
        }
        if args:
            begin["args"] = args
        self.events.append(begin)
        self.events.append({
            "name": name,
            "ph": "e",
            "ts": end * _US,
            "pid": pid,
            "tid": tid,
            "id": ident,
            "cat": cat or "async",
        })

    def counter(self, name: str, values: Optional[dict] = None,
                tid: str = "counters") -> None:
        """A sampled counter track (``ph: "C"`` — graphed by Perfetto)."""
        self.events.append({
            "name": name,
            "ph": "C",
            "ts": self.now * _US,
            "pid": self._pid(),
            "tid": self._tid(tid),
            "args": values or {},
        })

    def span(self, name: str, cat: str = "", tid: str = "main",
             args: Optional[dict] = None) -> _Span:
        """Context manager measuring from ``__enter__`` to ``__exit__``."""
        return _Span(self, name, cat, tid, args)

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def pid_labels(self) -> dict[str, int]:
        return dict(self._pid_ids)

    def tid_labels(self) -> dict[str, int]:
        return dict(self._tid_ids)

    def __repr__(self) -> str:
        return f"<Tracer detail={self.detail} events={len(self.events)}>"
