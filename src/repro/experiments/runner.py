"""Result containers and paper-style text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = ["SeriesResult", "render_table", "render_series"]


@dataclass
class SeriesResult:
    """One line of a paper figure: y-values of one approach over the x-axis."""

    approach: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.x.append(x)
        self.y.append(y)


def _fmt(v) -> str:
    # String cells pass through verbatim (e.g. "aborted (2 retries)").
    if isinstance(v, str):
        return v
    if v == 0:
        return "0"
    if abs(v) >= 1000:
        return f"{v:,.0f}"
    if abs(v) >= 10:
        return f"{v:.1f}"
    return f"{v:.3g}"


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Mapping[str, Sequence[object]],
    unit: str = "",
) -> str:
    """A bar-chart figure as text: one row per approach, one column per
    benchmark (the shape of Figure 3's grouped bars).  Cells are numbers,
    or pre-rendered strings for non-numeric outcomes."""
    width = max([len(r) for r in rows] + [len("approach")]) + 2
    cells = {name: [_fmt(v) for v in values] for name, values in rows.items()}
    colw = max(
        [len(c) for c in columns]
        + [len(c) for row in cells.values() for c in row]
        + [10]
    ) + 2
    out = [f"== {title}" + (f" [{unit}]" if unit else "")]
    header = "approach".ljust(width) + "".join(c.rjust(colw) for c in columns)
    out.append(header)
    out.append("-" * len(header))
    out.extend(
        name.ljust(width) + "".join(c.rjust(colw) for c in row)
        for name, row in cells.items()
    )
    return "\n".join(out)


def render_series(
    title: str,
    x_label: str,
    series: Iterable[SeriesResult],
    unit: str = "",
) -> str:
    """A line-plot figure as text: x values as columns, approaches as rows
    (the shape of Figures 4 and 5)."""
    series = list(series)
    if not series:
        return f"== {title} (no data)"
    xs = series[0].x
    width = max([len(s.approach) for s in series] + [len(x_label)]) + 2
    colw = 12
    out = [f"== {title}" + (f" [{unit}]" if unit else "")]
    header = x_label.ljust(width) + "".join(_fmt(x).rjust(colw) for x in xs)
    out.append(header)
    out.append("-" * len(header))
    out.extend(
        s.approach.ljust(width) + "".join(_fmt(y).rjust(colw) for y in s.y)
        for s in series
    )
    return "\n".join(out)
