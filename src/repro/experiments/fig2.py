"""Figure 2: the live storage transfer as it progresses in time.

The paper's Figure 2 sketches the protocol phases (active push during
memory transfer, SYNC, transfer of control, prioritized prefetch with
on-demand pulls, shutdown of the source).  This module *executes* one
hybrid migration under I/O pressure and renders the measured phase
timeline plus the per-phase data movement — the same figure, produced
from a run instead of drawn.
"""

from __future__ import annotations

from repro.cluster import CloudMiddleware, Cluster
from repro.experiments.config import VM_WORKING_SET, graphene_spec
from repro.metrics.report import render_migration_timeline
from repro.simkernel import Environment
from repro.workloads.synthetic import SequentialWriter

__all__ = ["run_fig2", "render_fig2"]

MB = 2**20


def run_fig2(approach: str = "our-approach", seed: int = 0, obs=None):
    """One migration under steady write pressure; returns
    ``(record, stats, traffic_by_tag)``."""
    from contextlib import nullcontext

    scope = obs.run_scope(f"{approach}/fig2") if obs is not None else nullcontext()
    with scope:
        env = Environment()
        if obs is not None:
            obs.install(env)
        cloud = CloudMiddleware(Cluster(env, graphene_spec(8)))
        vm = cloud.deploy("vm0", cloud.cluster.node(0), approach=approach,
                          working_set=VM_WORKING_SET)
        wl = SequentialWriter(
            vm, total_bytes=2048 * MB, rate=60e6, op_size=4 * MB,
            region_offset=1024 * MB, region_size=1024 * MB, seed=seed,
        )
        wl.start()
        done = {}

        def migrator():
            yield env.timeout(5.0)
            done["rec"] = yield cloud.migrate(vm, cloud.cluster.node(1))

        env.process(migrator())
        env.run()
        dst_stats = dict(getattr(vm.manager, "stats", {}))
        src_stats = (
            dict(getattr(vm.manager.peer, "stats", {})) if vm.manager.peer else {}
        )
        if obs is not None:
            obs.note_traffic(cloud.cluster.fabric.meter)
    return done["rec"], {"source": src_stats, "destination": dst_stats}, (
        cloud.cluster.fabric.meter.by_tag()
    )


def render_fig2(approach: str = "our-approach", seed: int = 0, obs=None) -> str:
    record, stats, traffic = run_fig2(approach, seed, obs=obs)
    lines = [
        "== Fig 2: Overview of the live storage transfer as it progresses "
        f"in time ({approach})",
        "",
        render_migration_timeline(record),
        "",
        "data movement:",
    ]
    lines.extend(
        f"  {tag:14s} {traffic[tag] / MB:9.1f} MB"
        for tag in ("memory", "storage-push", "storage-pull", "repo-fetch")
        if tag in traffic
    )
    src = stats.get("source", {})
    dst = stats.get("destination", {})
    if src or dst:
        lines.append(
            "chunk events: "
            f"pushed={src.get('pushed_chunks', 0)}, "
            f"prefetched={dst.get('pulled_chunks', 0)}, "
            f"on-demand={dst.get('ondemand_chunks', 0)}, "
            f"hot-skipped={src.get('skipped_hot_chunks', 0)}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_fig2())
