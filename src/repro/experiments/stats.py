"""Seeded replication and summary statistics for experiments.

The simulator is deterministic given a seed; variability across seeds
comes from workload randomness (random/Zipf offsets, trace generation,
the random prefetch policy).  ``replicate`` runs an experiment across
seeds; ``summarize`` reduces a sample to mean / stddev / a normal-theory
confidence half-width — enough to put honest error bars on figure points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["Summary", "replicate", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Sample statistics of one metric across replications."""

    n: int
    mean: float
    std: float
    ci95: float  # half-width of the ~95% confidence interval
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95:.2g} (n={self.n})"


def replicate(
    experiment: Callable[[int], T],
    seeds: Iterable[int] = range(5),
) -> list[T]:
    """Run ``experiment(seed)`` for every seed, collecting the results."""
    return [experiment(int(seed)) for seed in seeds]


def summarize(values: Sequence[float]) -> Summary:
    """Mean/std/CI of a metric sample (n >= 1; std and CI are 0 for n=1)."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Summary(1, mean, 0.0, 0.0, values[0], values[0])
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(var)
    ci95 = 1.96 * std / math.sqrt(n)
    return Summary(n, mean, std, ci95, min(values), max(values))
