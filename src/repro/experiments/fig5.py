"""Figure 5: CM1 under 1..7 successive live migrations.

Three panels, x = number of successive migrations (one per minute):

* (a) cumulated migration time,
* (b) network traffic excluding CM1's own communication,
* (c) increase in application execution time over a migration-free run.

The paper deploys 64 ranks (8x8 subdomains); the default grid here is 4x4
for simulation speed — the BSP structure, the halo synchronization and the
per-rank dump pattern (the behaviours Figure 5 exercises) are preserved,
and ``grid=(8, 8)`` runs the full-scale shape.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.registry import APPROACHES
from repro.experiments.runner import SeriesResult, render_series
from repro.experiments.scenarios import ScenarioOutcome, run_cm1_successive

__all__ = ["run_fig5", "render_fig5", "MIGRATION_COUNTS"]

MIGRATION_COUNTS = (1, 3, 5, 7)


def run_fig5(
    approaches: Optional[Iterable[str]] = None,
    counts: Iterable[int] = MIGRATION_COUNTS,
    grid: tuple[int, int] = (4, 4),
    quick: bool = False,
    seed: int = 0,
    obs=None,
) -> dict[str, dict[int, tuple[ScenarioOutcome, ScenarioOutcome]]]:
    """Sweep successive migration counts per approach.

    Returns ``{approach: {n: (outcome, baseline)}}`` where the baseline is
    the same ensemble without migrations.
    """
    approaches = list(approaches) if approaches is not None else list(APPROACHES)
    counts = list(counts)
    workload_kwargs: dict = {}
    if quick:
        grid = (2, 2)
        counts = [n for n in counts if n <= 3] or [1]
        workload_kwargs = dict(n_steps=40, dump_every=8)

    results: dict[str, dict[int, tuple[ScenarioOutcome, ScenarioOutcome]]] = {}
    for approach in approaches:
        baseline = run_cm1_successive(
            approach,
            0,
            grid=grid,
            migrate=False,
            seed=seed,
            workload_kwargs=workload_kwargs,
            obs=obs,
        )
        per_count: dict[int, tuple[ScenarioOutcome, ScenarioOutcome]] = {}
        for n in counts:
            outcome = run_cm1_successive(
                approach,
                n,
                grid=grid,
                seed=seed,
                workload_kwargs=workload_kwargs,
                obs=obs,
            )
            per_count[n] = (outcome, baseline)
        results[approach] = per_count
    return results


def render_fig5(
    results: dict[str, dict[int, tuple[ScenarioOutcome, ScenarioOutcome]]],
) -> str:
    series_a, series_b, series_c = [], [], []
    for approach, per_count in results.items():
        sa = SeriesResult(approach)
        sb = SeriesResult(approach)
        sc = SeriesResult(approach)
        for n, (outcome, baseline) in per_count.items():
            sa.add(n, outcome.cumulated_migration_time)
            sb.add(n, outcome.migration_traffic / 2**30)
            sc.add(n, outcome.workload_elapsed - baseline.workload_elapsed)
        series_a.append(sa)
        series_b.append(sb)
        series_c.append(sc)
    return "\n\n".join(
        [
            render_series(
                "Fig 5(a): Cumulated migration time (lower is better)",
                "#migrations",
                series_a,
                unit="s",
            ),
            render_series(
                "Fig 5(b): Network traffic excl. CM1 communication "
                "(lower is better)",
                "#migrations",
                series_b,
                unit="GB",
            ),
            render_series(
                "Fig 5(c): Increase in app execution time (lower is better)",
                "#migrations",
                series_c,
                unit="s",
            ),
        ]
    )


if __name__ == "__main__":
    import sys

    quick = "--quick" in sys.argv
    print(render_fig5(run_fig5(quick=quick)))
