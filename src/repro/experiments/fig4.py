"""Figure 4: AsyncWR under 1..30 simultaneous live migrations.

Three panels, x = number of concurrent migrations:

* (a) average migration time per instance,
* (b) total network traffic,
* (c) performance degradation (% of the migration-free computational
  potential — realized here as the mean relative increase in per-VM
  completion time against a size-matched migration-free run).

The paper fixes 30 sources and raises the destination count 1 -> 30 in
steps of 10; ``quick`` shrinks the fleet for smoke runs.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.registry import APPROACHES
from repro.experiments.runner import SeriesResult, render_series
from repro.experiments.scenarios import (
    ScenarioOutcome,
    run_concurrent_migrations,
)

__all__ = ["run_fig4", "render_fig4", "CONCURRENCY_LEVELS"]

CONCURRENCY_LEVELS = (1, 10, 20, 30)


def run_fig4(
    approaches: Optional[Iterable[str]] = None,
    levels: Iterable[int] = CONCURRENCY_LEVELS,
    n_sources: int = 30,
    quick: bool = False,
    seed: int = 0,
    obs=None,
) -> dict[str, dict[int, tuple[ScenarioOutcome, ScenarioOutcome]]]:
    """Sweep concurrency per approach.

    Returns ``{approach: {n: (outcome, size-matched baseline)}}``.  The
    baseline shares the exact cluster geometry (node count depends on the
    destination count), so the degradation comparison is apples-to-apples.
    """
    approaches = list(approaches) if approaches is not None else list(APPROACHES)
    levels = list(levels)
    workload_kwargs: dict = {}
    warmup = 100.0
    if quick:
        # The fleet size must stay at 30 — the backplane-contention effect
        # panel (a) shows only exists at scale — so quick mode shortens
        # the workload and the warm-up instead.
        workload_kwargs = dict(iterations=90)
        warmup = 30.0

    results: dict[str, dict[int, tuple[ScenarioOutcome, ScenarioOutcome]]] = {}
    for approach in approaches:
        per_level: dict[int, tuple[ScenarioOutcome, ScenarioOutcome]] = {}
        for n in levels:
            baseline = run_concurrent_migrations(
                approach,
                n,
                n_sources=n_sources,
                warmup=warmup,
                migrate=False,
                seed=seed,
                workload_kwargs=workload_kwargs,
                obs=obs,
            )
            outcome = run_concurrent_migrations(
                approach,
                n,
                n_sources=n_sources,
                warmup=warmup,
                seed=seed,
                workload_kwargs=workload_kwargs,
                obs=obs,
            )
            per_level[n] = (outcome, baseline)
        results[approach] = per_level
    return results


def render_fig4(
    results: dict[str, dict[int, tuple[ScenarioOutcome, ScenarioOutcome]]],
) -> str:
    series_a, series_b, series_c = [], [], []
    for approach, per_level in results.items():
        sa = SeriesResult(approach)
        sb = SeriesResult(approach)
        sc = SeriesResult(approach)
        for n, (outcome, baseline) in per_level.items():
            sa.add(n, outcome.avg_migration_time)
            sb.add(n, outcome.total_traffic() / 2**30)
            sc.add(n, 100 * outcome.degradation_vs(baseline))
        series_a.append(sa)
        series_b.append(sb)
        series_c.append(sc)
    return "\n\n".join(
        [
            render_series(
                "Fig 4(a): Avg. migration time / instance (lower is better)",
                "#migrations",
                series_a,
                unit="s",
            ),
            render_series(
                "Fig 4(b): Total network traffic (lower is better)",
                "#migrations",
                series_b,
                unit="GB",
            ),
            render_series(
                "Fig 4(c): Performance degradation (lower is better)",
                "#migrations",
                series_c,
                unit="% of max",
            ),
        ]
    )


if __name__ == "__main__":
    import sys

    quick = "--quick" in sys.argv
    print(render_fig4(run_fig4(quick=quick)))
