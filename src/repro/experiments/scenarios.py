"""Scenario builders shared by the figure experiments.

Three scenario families, one per evaluation section:

* :func:`run_single_migration` — Section 5.3: one VM under IOR or AsyncWR,
  warm-up, then one live migration under full I/O pressure.
* :func:`run_concurrent_migrations` — Section 5.4: 30 AsyncWR sources,
  1..30 simultaneous migrations.
* :func:`run_cm1_successive` — Section 5.5: a CM1 ensemble with successive
  migrations at 60 s intervals.

Every builder also runs (or accepts) a migration-free baseline so the
degradation metrics have their reference, and returns a
:class:`ScenarioOutcome` with everything the figures need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.cluster import CloudMiddleware, Cluster
from repro.core.config import MigrationConfig
from repro.experiments.config import (
    ASYNCWR_WORKING_SET,
    CM1_WORKING_SET,
    VM_MEMORY,
    VM_WORKING_SET,
    graphene_spec,
)
from repro.hypervisor.memory import PrecopyMemory
from repro.obs import Observability
from repro.simkernel import Environment
from repro.workloads.asyncwr import AsyncWRWorkload
from repro.workloads.cm1 import build_cm1_ensemble
from repro.workloads.ior import IORWorkload

__all__ = [
    "ScenarioOutcome",
    "run_single_migration",
    "run_concurrent_migrations",
    "run_cm1_successive",
]


@dataclass
class ScenarioOutcome:
    """Everything a figure needs from one simulated experiment."""

    approach: str
    workload: str
    migration_times: list[float] = field(default_factory=list)
    downtimes: list[float] = field(default_factory=list)
    traffic_by_tag: dict[str, float] = field(default_factory=dict)
    read_throughput: float = 0.0
    write_throughput: float = 0.0
    #: Write pressure sustained over the migration window (bytes/s) — the
    #: metric the AsyncWR bars of Figure 3(c) report.
    window_write_rate: float = 0.0
    workload_elapsed: float = 0.0
    #: Per-VM workload completion times (multi-VM scenarios).
    elapsed_each: list[float] = field(default_factory=list)
    counters: int = 0
    #: Migration attempts that aborted (fault injection); with restarts,
    #: each re-issued attempt gets its own record, so retries = aborts - 1
    #: when nothing ever completed.
    aborts: int = 0

    def degradation_vs(self, baseline: "ScenarioOutcome") -> float:
        """Mean relative increase in per-VM completion time (fraction) —
        the computation-lost metric of Figure 4(c) in elapsed-time form."""
        if self.elapsed_each and baseline.elapsed_each:
            pairs = zip(self.elapsed_each, baseline.elapsed_each)
            return sum((a - b) / b for a, b in pairs) / len(self.elapsed_each)
        return (
            (self.workload_elapsed - baseline.workload_elapsed)
            / baseline.workload_elapsed
        )

    @property
    def migration_time(self) -> float:
        """Single-migration scenarios: the one migration's duration."""
        if len(self.migration_times) != 1:
            raise ValueError("scenario has != 1 migration")
        return self.migration_times[0]

    @property
    def avg_migration_time(self) -> float:
        if not self.migration_times:
            raise ValueError("no migrations completed")
        return sum(self.migration_times) / len(self.migration_times)

    @property
    def cumulated_migration_time(self) -> float:
        return sum(self.migration_times)

    def total_traffic(self, exclude: Iterable[str] = ()) -> float:
        exclude = frozenset(exclude)
        return sum(v for k, v in self.traffic_by_tag.items() if k not in exclude)

    @property
    def migration_traffic(self) -> float:
        """Traffic attributable to migration: everything except the
        application's own communication (the Figure 5(b) subtraction)."""
        return self.total_traffic(exclude=("app",))


class _NullRunScope:
    """Stand-in for ``Observability.run_scope`` when no obs is attached."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def _scope(obs: Optional[Observability], label: str):
    return obs.run_scope(label) if obs is not None else _NullRunScope()


def _make_cloud(
    n_nodes: int,
    config: Optional[MigrationConfig],
    obs: Optional[Observability] = None,
    **spec_overrides,
):
    env = Environment()
    if obs is not None:
        obs.install(env)
    cluster = Cluster(env, graphene_spec(n_nodes, **spec_overrides))
    cloud = CloudMiddleware(cluster, config=config)
    return env, cloud


def _memory_strategy():
    return PrecopyMemory(downtime_target=0.05, max_rounds=30)


def _apply_faults(env, cloud, faults):
    """Start a FaultInjector for ``faults`` against the cloud's cluster."""
    if faults is None:
        return
    from repro.faults import FaultInjector

    FaultInjector(env, cloud.cluster, faults).start()


def _run_env(env, faults) -> None:
    """Drive the simulation, bounded by the plan's horizon when set."""
    if faults is not None and faults.horizon is not None:
        env.run(until=faults.horizon)
    else:
        env.run()


def _faulted_config(config, faults):
    """Fold a plan's failure-semantics overrides into the config."""
    if faults is None:
        return config
    return faults.apply_to(config if config is not None else MigrationConfig())


def _build_workload(kind: str, vm, seed: int, workload_kwargs: dict):
    if kind == "ior":
        return IORWorkload(vm, seed=seed, **workload_kwargs)
    if kind == "asyncwr":
        return AsyncWRWorkload(vm, seed=seed, **workload_kwargs)
    raise ValueError(f"unknown workload kind {kind!r}")


def run_single_migration(
    approach: str,
    workload: str = "ior",
    warmup: float = 100.0,
    n_nodes: int = 8,
    migrate: bool = True,
    seed: int = 0,
    config: Optional[MigrationConfig] = None,
    workload_kwargs: Optional[dict] = None,
    obs: Optional[Observability] = None,
    faults=None,
    restarts: int = 0,
) -> ScenarioOutcome:
    """Section 5.3: one VM, one migration after ``warmup`` seconds.

    ``migrate=False`` produces the migration-free baseline run used for
    normalization.  ``obs`` attaches a tracing/metrics bundle; the run's
    events land in a process lane named after the approach/workload.
    ``faults`` (a :class:`~repro.faults.FaultPlan`) schedules fault
    injection, folds the plan's timeout/retry knobs into the config and
    bounds the run by the plan's horizon; ``restarts`` re-issues an
    aborted migration that many extra times.
    """
    label = f"{approach}/{workload}" + ("" if migrate else "/baseline")
    config = _faulted_config(config, faults)
    with _scope(obs, label):
        env, cloud = _make_cloud(n_nodes, config, obs=obs)
        _apply_faults(env, cloud, faults)
        working_set = ASYNCWR_WORKING_SET if workload == "asyncwr" else VM_WORKING_SET
        vm = cloud.deploy(
            "vm0",
            cloud.cluster.node(0),
            approach=approach,
            memory_size=VM_MEMORY,
            working_set=working_set,
        )
        wl = _build_workload(workload, vm, seed, workload_kwargs or {})
        wl.start()

        if migrate:

            def migrator():
                yield env.timeout(warmup)
                yield cloud.migrate(
                    vm, cloud.cluster.node(1), memory=_memory_strategy(),
                    restarts=restarts,
                )

            env.process(migrator())

        _run_env(env, faults)

        outcome = ScenarioOutcome(approach=approach, workload=workload)
        outcome.migration_times = cloud.collector.migration_times()
        outcome.downtimes = [
            r.downtime for r in cloud.collector.completed() if r.downtime is not None
        ]
        outcome.traffic_by_tag = cloud.cluster.fabric.meter.by_tag()
        outcome.read_throughput = wl.read_throughput()
        outcome.write_throughput = wl.write_throughput()
        outcome.aborts = sum(1 for r in cloud.collector.records if r.aborted)
        records = cloud.collector.completed()
        if records:
            rec = records[0]
            outcome.window_write_rate = wl.written_timeline.mean_rate(
                rec.requested_at, rec.released_at
            )
        else:
            outcome.window_write_rate = wl.written_timeline.mean_rate()
        outcome.workload_elapsed = wl.elapsed or 0.0
        outcome.counters = getattr(wl, "counter", 0)
        if obs is not None:
            obs.note_traffic(cloud.cluster.fabric.meter)
    return outcome


def run_concurrent_migrations(
    approach: str,
    n_migrations: int,
    n_sources: int = 30,
    warmup: float = 100.0,
    migrate: bool = True,
    seed: int = 0,
    config: Optional[MigrationConfig] = None,
    workload_kwargs: Optional[dict] = None,
    obs: Optional[Observability] = None,
    faults=None,
) -> ScenarioOutcome:
    """Section 5.4: AsyncWR on every source; the first ``n_migrations`` VMs
    migrate simultaneously after the warm-up."""
    if n_migrations > n_sources:
        raise ValueError("cannot migrate more VMs than sources")
    n_nodes = n_sources + max(n_migrations, 1)
    label = f"{approach}/asyncwr-x{n_migrations}" + ("" if migrate else "/baseline")
    config = _faulted_config(config, faults)
    with _scope(obs, label):
        env, cloud = _make_cloud(n_nodes, config, obs=obs)
        _apply_faults(env, cloud, faults)
        vms = []
        workloads = []
        for i in range(n_sources):
            vm = cloud.deploy(
                f"vm{i}",
                cloud.cluster.node(i),
                approach=approach,
                memory_size=VM_MEMORY,
                working_set=ASYNCWR_WORKING_SET,
            )
            wl = AsyncWRWorkload(vm, seed=seed + i, **(workload_kwargs or {}))
            wl.start()
            vms.append(vm)
            workloads.append(wl)

        if migrate:

            def migrator(i):
                yield env.timeout(warmup)
                yield cloud.migrate(
                    vms[i], cloud.cluster.node(n_sources + i),
                    memory=_memory_strategy()
                )

            for i in range(n_migrations):
                env.process(migrator(i))

        _run_env(env, faults)

        outcome = ScenarioOutcome(approach=approach, workload="asyncwr")
        outcome.migration_times = cloud.collector.migration_times()
        outcome.downtimes = [
            r.downtime for r in cloud.collector.completed() if r.downtime is not None
        ]
        outcome.traffic_by_tag = cloud.cluster.fabric.meter.by_tag()
        elapsed = [wl.elapsed or 0.0 for wl in workloads]
        outcome.workload_elapsed = max(elapsed)
        outcome.elapsed_each = elapsed
        outcome.counters = sum(wl.counter for wl in workloads)
        outcome.write_throughput = (
            sum(wl.write_throughput() for wl in workloads) / n_sources
        )
        if obs is not None:
            obs.note_traffic(cloud.cluster.fabric.meter)
    return outcome


def run_cm1_successive(
    approach: str,
    n_migrations: int,
    grid: tuple[int, int] = (4, 4),
    interval: float = 60.0,
    first_at: float = 60.0,
    migrate: bool = True,
    seed: int = 0,
    config: Optional[MigrationConfig] = None,
    workload_kwargs: Optional[dict] = None,
    obs: Optional[Observability] = None,
    faults=None,
) -> ScenarioOutcome:
    """Section 5.5: a CM1 ensemble; rank *i* migrates at
    ``first_at + i * interval`` (i < n_migrations).

    The paper runs an 8x8 grid of ranks; the default here is 4x4 for
    simulation speed — pass ``grid=(8, 8)`` for the full-scale shape.
    """
    n_ranks = grid[0] * grid[1]
    if n_migrations > n_ranks:
        raise ValueError("cannot migrate more ranks than exist")
    n_nodes = n_ranks + max(n_migrations, 1)
    label = f"{approach}/cm1-x{n_migrations}" + ("" if migrate else "/baseline")
    config = _faulted_config(config, faults)
    with _scope(obs, label):
        env, cloud = _make_cloud(n_nodes, config, obs=obs)
        _apply_faults(env, cloud, faults)
        vms = []
        for i in range(n_ranks):
            vm = cloud.deploy(
                f"rank{i}",
                cloud.cluster.node(i),
                approach=approach,
                memory_size=VM_MEMORY,
                working_set=CM1_WORKING_SET,
            )
            vms.append(vm)
        workloads = build_cm1_ensemble(
            env, vms, cloud.cluster.fabric, grid, **(workload_kwargs or {})
        )
        for wl in workloads:
            wl.start()

        if migrate:

            def migrator(i):
                yield env.timeout(first_at + i * interval)
                yield cloud.migrate(
                    vms[i], cloud.cluster.node(n_ranks + i),
                    memory=_memory_strategy()
                )

            for i in range(n_migrations):
                env.process(migrator(i))

        _run_env(env, faults)

        outcome = ScenarioOutcome(approach=approach, workload="cm1")
        outcome.migration_times = cloud.collector.migration_times()
        outcome.downtimes = [
            r.downtime for r in cloud.collector.completed() if r.downtime is not None
        ]
        outcome.traffic_by_tag = cloud.cluster.fabric.meter.by_tag()
        start = min(wl.started_at for wl in workloads)
        end = max(wl.finished_at for wl in workloads)
        outcome.workload_elapsed = end - start
        if obs is not None:
            obs.note_traffic(cloud.cluster.fabric.meter)
    return outcome
