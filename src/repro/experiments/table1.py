"""Table 1: summary of compared approaches."""

from __future__ import annotations

from repro.core.registry import approach_summary

__all__ = ["run_table1", "render_table1"]


def run_table1() -> list[tuple[str, str]]:
    """The rows of the paper's Table 1, from the approach registry."""
    return approach_summary()


def render_table1() -> str:
    rows = run_table1()
    width = max(len(name) for name, _ in rows) + 2
    lines = ["== Table 1: Summary of compared approaches"]
    lines.append("Approach".ljust(width) + "Local storage transfer strategy")
    lines.append("-" * 60)
    lines.extend(name.ljust(width) + summary for name, summary in rows)
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_table1())
