"""Figure 3: live migration performance of I/O intensive benchmarks.

Three panels over the five approaches, for IOR and AsyncWR:

* (a) migration time,
* (b) total network traffic,
* (c) normalized throughput (% of the no-migration maxima: 1 GB/s
  IOR reads, 266 MB/s IOR writes, 6 MB/s AsyncWR pressure).

The paper warms up for 100 s before migrating.  Our calibrated IOR
completes its 10 iterations in under a minute (10 x (1 GB / 266 MB/s
writes + 1 GB / 1 GB/s reads)), so the IOR migration fires at 10 s to land
mid-benchmark — the paper's stated intent ("forcing the live migration to
withstand the full I/O pressure").  AsyncWR runs ~300 s, so its migration
keeps the paper's 100 s warm-up.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.registry import APPROACHES
from repro.experiments.config import (
    ASYNCWR_MAX_WRITE,
    IOR_MAX_READ,
    IOR_MAX_WRITE,
)
from repro.experiments.runner import render_table
from repro.experiments.scenarios import ScenarioOutcome, run_single_migration

__all__ = ["run_fig3", "render_fig3", "IOR_WARMUP", "ASYNCWR_WARMUP"]

IOR_WARMUP = 10.0
ASYNCWR_WARMUP = 100.0


def run_fig3(
    approaches: Optional[Iterable[str]] = None,
    quick: bool = False,
    seed: int = 0,
    obs=None,
) -> dict[str, dict[str, ScenarioOutcome]]:
    """Run both benchmarks under every approach.

    ``quick`` shrinks the workloads (for CI/benchmark smoke runs) while
    preserving the migration-under-pressure structure.

    Returns ``{workload: {approach: outcome}}``.
    """
    approaches = list(approaches) if approaches is not None else list(APPROACHES)
    ior_kwargs: dict = {}
    asyncwr_kwargs: dict = {}
    ior_warmup, asyncwr_warmup = IOR_WARMUP, ASYNCWR_WARMUP
    if quick:
        # Keep the structure (migration lands mid-benchmark, the storage
        # volume dominates the memory volume) while shrinking runtime.
        ior_kwargs = dict(iterations=6, file_size=512 * 2**20, op_size=8 * 2**20)
        asyncwr_kwargs = dict(iterations=60)
        ior_warmup, asyncwr_warmup = 3.0, 30.0

    results: dict[str, dict[str, ScenarioOutcome]] = {"ior": {}, "asyncwr": {}}
    for approach in approaches:
        results["ior"][approach] = run_single_migration(
            approach,
            workload="ior",
            warmup=ior_warmup,
            seed=seed,
            workload_kwargs=ior_kwargs,
            obs=obs,
        )
        results["asyncwr"][approach] = run_single_migration(
            approach,
            workload="asyncwr",
            warmup=asyncwr_warmup,
            seed=seed,
            workload_kwargs=asyncwr_kwargs,
            obs=obs,
        )
    return results


def render_fig3(results: dict[str, dict[str, ScenarioOutcome]]) -> str:
    """The paper's three panels as text tables."""
    approaches = list(results["ior"])
    panel_a = {
        a: [
            results["ior"][a].migration_time,
            results["asyncwr"][a].migration_time,
        ]
        for a in approaches
    }
    panel_b = {
        a: [
            results["ior"][a].total_traffic() / 2**20,
            results["asyncwr"][a].total_traffic() / 2**20,
        ]
        for a in approaches
    }
    panel_c = {
        a: [
            100 * results["ior"][a].read_throughput / IOR_MAX_READ,
            100 * results["ior"][a].write_throughput / IOR_MAX_WRITE,
            100 * results["asyncwr"][a].window_write_rate / ASYNCWR_MAX_WRITE,
        ]
        for a in approaches
    }
    return "\n\n".join(
        [
            render_table(
                "Fig 3(a): Migration time (lower is better)",
                ["IOR", "AsyncWR"],
                panel_a,
                unit="s",
            ),
            render_table(
                "Fig 3(b): Total network traffic (lower is better)",
                ["IOR", "AsyncWR"],
                panel_b,
                unit="MB",
            ),
            render_table(
                "Fig 3(c): Normalized throughput vs no-migration max "
                "(higher is better)",
                ["IOR-Read", "IOR-Write", "AsyncWR"],
                panel_c,
                unit="%",
            ),
        ]
    )


if __name__ == "__main__":
    import sys

    quick = "--quick" in sys.argv
    print(render_fig3(run_fig3(quick=quick)))
