"""The paper's evaluation, experiment by experiment.

One module per artifact of Section 5:

* :mod:`~repro.experiments.table1` — the approach summary table.
* :mod:`~repro.experiments.fig3`   — single live migration of IOR / AsyncWR
  (migration time, network traffic, normalized throughput).
* :mod:`~repro.experiments.fig4`   — 1..30 simultaneous migrations of
  AsyncWR (avg migration time, traffic, performance degradation).
* :mod:`~repro.experiments.fig5`   — CM1 with 1..7 successive migrations
  (cumulated migration time, migration-attributable traffic, execution
  time increase).

:mod:`~repro.experiments.scenarios` contains the scenario builders the
figures share; :mod:`~repro.experiments.config` the Grid'5000 graphene
calibration; :mod:`~repro.experiments.runner` result containers and the
paper-style text rendering used by the benchmark harness.
"""

from repro.experiments.config import (
    ASYNCWR_MAX_WRITE,
    GRAPHENE,
    IOR_MAX_READ,
    IOR_MAX_WRITE,
    graphene_spec,
)
from repro.experiments.runner import SeriesResult, render_series, render_table

__all__ = [
    "ASYNCWR_MAX_WRITE",
    "GRAPHENE",
    "IOR_MAX_READ",
    "IOR_MAX_WRITE",
    "SeriesResult",
    "graphene_spec",
    "render_series",
    "render_table",
]
