"""Figure 1: the cloud architecture that integrates the approach.

The paper's Figure 1 is a diagram; its reproducible content is the
*inventory* — which components exist, where they run, and how they are
wired.  This module renders that inventory from a live ``Cluster``, so
the "figure" is generated from the actual object graph rather than
hand-drawn (a missing wire would show up as a missing line).
"""

from __future__ import annotations

from repro.cluster.cloud import Cluster

__all__ = ["render_fig1", "run_fig1"]


def run_fig1(cluster: Cluster, cloud=None) -> dict:
    """Collect the architecture inventory of a live cluster."""
    spec = cluster.spec
    inventory = {
        "compute_nodes": [n.name for n in cluster.nodes],
        "fabric": {
            "nic_bw": spec.nic_bw,
            "backplane_bw": spec.backplane_bw,
            "latency": spec.latency,
            "racks": sorted({h.rack for h in cluster.topology.hosts}),
        },
        "shared_repository": {
            "kind": type(cluster.repository).__name__,
            "servers": len(cluster.repository.servers),
            "stripe": cluster.repository.chunk_size,
            "replication": cluster.repository.replication,
        },
        "pvfs": {
            "servers": len(cluster.pvfs.servers),
            "stripe_width": cluster.pvfs.stripe_width,
            "client_write_bw": cluster.pvfs.client_write_bw,
        },
        "vms": {},
    }
    if cloud is not None:
        for name, vm in cloud.vms.items():
            inventory["vms"][name] = {
                "node": vm.node.name,
                "manager": vm.manager.name,
            }
    return inventory


def render_fig1(cluster: Cluster, cloud=None) -> str:
    inv = run_fig1(cluster, cloud)
    spec = cluster.spec
    lines = ["== Fig 1: Cloud architecture (generated from the object graph)"]
    lines.append(
        f"cloud middleware ──deploy/migrate──> {len(inv['compute_nodes'])} "
        f"compute nodes"
    )
    lines.append(
        f"  fabric: NIC {spec.nic_bw / 1e6:.1f} MB/s full duplex, "
        f"backplane {spec.backplane_bw / 1e9 if spec.backplane_bw else float('inf'):.1f} GB/s, "
        f"latency {spec.latency * 1e3:.2f} ms"
    )
    repo = inv["shared_repository"]
    lines.append(
        f"  shared repository: {repo['kind']} over {repo['servers']} servers, "
        f"{repo['stripe'] // 1024} KiB stripes x{repo['replication']}"
    )
    pv = inv["pvfs"]
    lines.append(
        f"  pvfs: {pv['servers']} servers, stripe width {pv['stripe_width']}, "
        f"client write ceiling {pv['client_write_bw'] / 1e6:.0f} MB/s"
    )
    for node_name in inv["compute_nodes"]:
        vms_here = [
            f"{vm} [{meta['manager']}]"
            for vm, meta in inv["vms"].items()
            if meta["node"] == node_name
        ]
        suffix = ", ".join(vms_here) if vms_here else "-"
        lines.append(f"    {node_name}: hypervisor + migration manager + "
                     f"local disk ({spec.disk_bw / 1e6:.0f} MB/s) | VMs: {suffix}")
    return "\n".join(lines)
