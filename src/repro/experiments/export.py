"""Machine-readable export of experiment results.

The text tables in :mod:`repro.experiments.runner` are for humans; this
module writes the same data as CSV (one row per approach/x-value) and
JSON (full outcome dumps) so plots and regression dashboards can consume
reproduction runs without parsing text.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Iterable, Mapping, Sequence

from repro.experiments.runner import SeriesResult
from repro.experiments.scenarios import ScenarioOutcome

__all__ = [
    "outcome_to_dict",
    "write_table_csv",
    "write_series_csv",
    "write_outcomes_json",
]


def outcome_to_dict(outcome: ScenarioOutcome) -> dict:
    """A ScenarioOutcome as plain JSON-serializable data."""
    return {
        "approach": outcome.approach,
        "workload": outcome.workload,
        "migration_times": list(outcome.migration_times),
        "downtimes": list(outcome.downtimes),
        "traffic_by_tag": dict(outcome.traffic_by_tag),
        "total_traffic": outcome.total_traffic(),
        "migration_traffic": outcome.migration_traffic,
        "read_throughput": outcome.read_throughput,
        "write_throughput": outcome.write_throughput,
        "window_write_rate": outcome.window_write_rate,
        "workload_elapsed": outcome.workload_elapsed,
        "elapsed_each": list(outcome.elapsed_each),
        "counters": outcome.counters,
    }


def write_table_csv(
    path: str | pathlib.Path,
    columns: Sequence[str],
    rows: Mapping[str, Sequence[float]],
) -> pathlib.Path:
    """Grouped-bar data (Figure 3 shape): one row per approach."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["approach", *columns])
        for name, values in rows.items():
            if len(values) != len(columns):
                raise ValueError(
                    f"row {name!r} has {len(values)} values for "
                    f"{len(columns)} columns"
                )
            writer.writerow([name, *values])
    return path


def write_series_csv(
    path: str | pathlib.Path,
    x_label: str,
    series: Iterable[SeriesResult],
) -> pathlib.Path:
    """Line-plot data (Figures 4/5 shape): long format, one row per
    (approach, x) point."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["approach", x_label, "value"])
        for s in series:
            if len(s.x) != len(s.y):
                raise ValueError(f"series {s.approach!r} has ragged x/y")
            for x, y in zip(s.x, s.y):
                writer.writerow([s.approach, x, y])
    return path


def write_outcomes_json(
    path: str | pathlib.Path,
    outcomes: Mapping[str, ScenarioOutcome] | Mapping[str, Mapping],
) -> pathlib.Path:
    """Full outcome dump, arbitrarily nested dicts of ScenarioOutcomes."""

    def convert(node):
        if isinstance(node, ScenarioOutcome):
            return outcome_to_dict(node)
        if isinstance(node, Mapping):
            return {str(k): convert(v) for k, v in node.items()}
        if isinstance(node, (list, tuple)):
            return [convert(v) for v in node]
        return node

    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(convert(outcomes), indent=2, sort_keys=True))
    return path
