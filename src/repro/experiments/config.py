"""Calibration constants for the paper's evaluation (Section 5.1).

The hardware numbers come straight from the paper's description of the
Grid'5000 *graphene* cluster; the workload maxima are the paper's measured
no-migration ceilings used to normalize Figure 3(c).
"""

from __future__ import annotations

from repro.cluster.cloud import ClusterSpec

__all__ = [
    "GRAPHENE",
    "graphene_spec",
    "IOR_MAX_READ",
    "IOR_MAX_WRITE",
    "ASYNCWR_MAX_WRITE",
    "VM_MEMORY",
    "VM_WORKING_SET",
    "CM1_WORKING_SET",
]

#: Paper-measured guest ceilings (Section 5.3).
IOR_MAX_READ = 1e9  # 1 GB/s POSIX reads, no migration
IOR_MAX_WRITE = 266e6  # 266 MB/s POSIX writes, no migration
ASYNCWR_MAX_WRITE = 6e6  # ~6 MB/s constant pressure, no migration

#: VM sizing (Section 5.3/5.5).
VM_MEMORY = 4 * 2**30
#: Touched memory shipped by the first pre-copy round.  The paper gives
#: every VM 4 GB of RAM, but QEMU only moves touched pages: an IOR guest's
#: page cache holds the whole benchmark file (~1 GB), an AsyncWR guest
#: touches little beyond its buffers, CM1 keeps subdomain fields and MPI
#: buffers live.
VM_WORKING_SET = 1 * 2**30
ASYNCWR_WORKING_SET = 256 * 2**20
CM1_WORKING_SET = 1.2 * 2**30

#: The graphene cluster hardware (Section 5.1).
GRAPHENE = dict(
    nic_bw=117.5e6,  # measured GbE TCP throughput
    # The paper quotes ~8 GB/s for the Cisco Catalyst backplane, yet
    # observes 30 concurrent migrations (30 x 117.5 MB/s ~ 3.5 GB/s of NIC
    # demand) saturating it.  The effective fabric capacity under many
    # concurrent flows is therefore well below the marketing aggregate; we
    # calibrate it so the paper's observed contention point reproduces.
    backplane_bw=2.5e9,
    latency=1e-4,  # ~0.1 ms
    disk_bw=55e6,  # SATA II sequential
    disk_cache_bytes=8 * 2**30,
    chunk_size=256 * 1024,  # BlobSeer stripe size
    image_size=4 * 2**30,  # base disk image
)


def graphene_spec(n_nodes: int, **overrides) -> ClusterSpec:
    """A ClusterSpec for ``n_nodes`` graphene-calibrated nodes.

    The paper provisions 100 nodes; the simulation only needs the nodes an
    experiment actually touches (sources + destinations + enough repository
    striping width), so callers pick smaller counts for speed.  Overrides
    win over the graphene defaults.
    """
    params = dict(GRAPHENE)
    params.update(overrides)
    return ClusterSpec(n_nodes=n_nodes, **params)
