"""The IaaS cloud: compute nodes, cluster wiring, middleware, advisor."""

from repro.cluster.advisor import MigrationAdvisor
from repro.cluster.cloud import CloudMiddleware, Cluster, ClusterSpec
from repro.cluster.node import ComputeNode
from repro.cluster.scheduler import DatacenterScheduler

__all__ = [
    "CloudMiddleware",
    "Cluster",
    "ClusterSpec",
    "ComputeNode",
    "DatacenterScheduler",
    "MigrationAdvisor",
]
