"""I/O-pattern-aware migration scheduling (paper future work).

From the paper's conclusion: "we plan to monitor I/O patterns with the
purpose of predicting the best moment to initiate a live migration.  Such
information could be leveraged by the cloud middleware to better
orchestrate live migrations within the datacenter."

:class:`MigrationAdvisor` is that middleware piece: it samples a VM's
recent write pressure and fires the migration when the pressure drops
below a threshold derived from the observed history — i.e. it waits for a
lull between I/O bursts (for CM1-like applications: between output dumps).
A deadline bounds the wait so a VM that never goes quiet still migrates.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.metrics.timeline import Timeline
from repro.simkernel.core import Environment, Process

__all__ = ["MigrationAdvisor"]


class MigrationAdvisor:
    """Waits for an I/O lull, then triggers the migration.

    Parameters
    ----------
    cloud:
        The :class:`~repro.cluster.cloud.CloudMiddleware` to migrate with.
    quiet_fraction:
        The write pressure (relative to the observed peak) below which the
        VM counts as quiet.
    min_observation:
        Seconds of monitoring before a decision may fire (the predictor
        needs history to know what "quiet" means for this VM).
    deadline:
        Seconds after ``start`` at which the migration fires regardless.
    sample_interval:
        Monitoring granularity.
    """

    def __init__(
        self,
        cloud,
        quiet_fraction: float = 0.25,
        min_observation: float = 10.0,
        deadline: float = 120.0,
        sample_interval: float = 1.0,
    ):
        if not 0 < quiet_fraction <= 1:
            raise ValueError("quiet_fraction must lie in (0, 1]")
        if deadline <= min_observation:
            raise ValueError("deadline must exceed min_observation")
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.cloud = cloud
        self.env: Environment = cloud.env
        self.quiet_fraction = float(quiet_fraction)
        self.min_observation = float(min_observation)
        self.deadline = float(deadline)
        self.sample_interval = float(sample_interval)
        #: Sampled write pressure, for inspection/plots.
        self.samples = Timeline("advisor:write-pressure")
        #: Why the migration fired: "quiet" or "deadline".
        self.fired_reason: Optional[str] = None

    def migrate_when_quiet(self, vm, dst_node, memory=None) -> Process:
        """Start monitoring ``vm``; returns a process yielding the
        MigrationRecord of the eventually-triggered migration."""
        return self.env.process(
            self._run(vm, dst_node, memory), name=f"advisor:{vm.name}"
        )

    def _run(self, vm, dst_node, memory) -> Generator:
        start = self.env.now
        peak = 0.0
        cumulative = 0.0
        while True:
            yield self.env.timeout(self.sample_interval)
            rate = vm.recent_write_rate()
            cumulative += rate
            self.samples.record(self.env.now, cumulative)
            peak = max(peak, rate)
            elapsed = self.env.now - start
            if elapsed >= self.deadline:
                self.fired_reason = "deadline"
                break
            if elapsed < self.min_observation:
                continue
            if peak > 0 and rate <= self.quiet_fraction * peak:
                self.fired_reason = "quiet"
                break
            if peak == 0:
                # Never saw any I/O: nothing to wait for.
                self.fired_reason = "quiet"
                break
        record = yield self.cloud.migrate(vm, dst_node, memory=memory)
        return record
