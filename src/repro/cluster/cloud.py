"""Cluster construction and the cloud middleware.

:class:`ClusterSpec` captures the Grid'5000 *graphene* calibration the
paper's evaluation ran on (Section 5.1); :class:`Cluster` wires topology,
fabric, disks and both repositories; :class:`CloudMiddleware` is the
user-facing frontend that deploys VM instances from a base image and
initiates live migrations (the component that "implements the VM
scheduling strategies" in Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.node import ComputeNode
from repro.core.config import MigrationConfig
from repro.core.registry import manager_class
from repro.hypervisor.control import LiveMigration
from repro.hypervisor.vm import VMInstance
from repro.metrics.collector import MetricsCollector
from repro.netsim.flows import Fabric
from repro.netsim.topology import Topology
from repro.repository.blobseer import StripedRepository
from repro.repository.pvfs import PVFS
from repro.simkernel.core import Environment, Process
from repro.storage.disk import LocalDisk
from repro.storage.virtualdisk import VirtualDisk

__all__ = ["ClusterSpec", "Cluster", "CloudMiddleware"]


@dataclass
class ClusterSpec:
    """Hardware calibration (defaults: Grid'5000 graphene, Section 5.1)."""

    n_nodes: int = 8
    nic_bw: float = 117.5e6  # measured GbE TCP throughput
    backplane_bw: Optional[float] = 8e9  # Cisco Catalyst aggregate
    latency: float = 1e-4  # 0.1 ms
    disk_bw: float = 55e6  # SATA II sequential
    disk_cache_bytes: float = 8 * 2**30  # host page cache budget
    chunk_size: int = 256 * 1024  # BlobSeer stripe size
    image_size: int = 4 * 2**30  # base disk image
    #: Allocated portion of the base image (a minimal Debian Sid install
    #: plus applications, ~1 GB); the rest of the 4 GB image is scratch.
    base_allocated: int = 1 * 2**30
    repo_replication: int = 1
    pvfs_stripe_width: int = 4
    pvfs_client_write_bw: float = 14e6  # qcow2-over-PVFS sync ceiling

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("a cluster needs at least 2 nodes")
        if self.image_size % self.chunk_size != 0:
            raise ValueError("image_size must be a multiple of chunk_size")
        if not 0 <= self.base_allocated <= self.image_size:
            raise ValueError("base_allocated must lie in [0, image_size]")


class Cluster:
    """Topology + fabric + nodes + repositories, built from a spec."""

    def __init__(self, env: Environment, spec: Optional[ClusterSpec] = None):
        self.env = env
        self.spec = spec if spec is not None else ClusterSpec()
        s = self.spec
        self.topology = Topology(backplane=s.backplane_bw)
        self.nodes: list[ComputeNode] = []
        for i in range(s.n_nodes):
            host = self.topology.add_host(f"node{i}", nic_out=s.nic_bw)
            disk = LocalDisk(
                env,
                bandwidth=s.disk_bw,
                cache_bytes=s.disk_cache_bytes,
                chunk_size=s.chunk_size,
                name=f"node{i}",
            )
            self.nodes.append(ComputeNode(f"node{i}", host, disk))
        self.fabric = Fabric(env, self.topology, latency=s.latency)
        hosts = [n.host for n in self.nodes]
        # Both repository flavors span all compute nodes, as in the paper.
        self.repository = StripedRepository(
            env,
            self.fabric,
            hosts,
            chunk_size=s.chunk_size,
            replication=s.repo_replication,
        )
        self.pvfs = PVFS(
            env,
            self.fabric,
            hosts,
            chunk_size=s.chunk_size,
            client_write_bw=s.pvfs_client_write_bw,
            stripe_width=s.pvfs_stripe_width,
        )

    def node(self, index: int) -> ComputeNode:
        return self.nodes[index]

    def __repr__(self) -> str:
        return f"<Cluster {len(self.nodes)} nodes>"


class CloudMiddleware:
    """Deployment and migration frontend."""

    def __init__(
        self,
        cluster: Cluster,
        collector: Optional[MetricsCollector] = None,
        config: Optional[MigrationConfig] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.collector = collector if collector is not None else MetricsCollector()
        self.config = config if config is not None else MigrationConfig()
        self.vms: dict[str, VMInstance] = {}

    def deploy(
        self,
        name: str,
        node: ComputeNode,
        approach: str = "our-approach",
        memory_size: float = 4 * 2**30,
        working_set: float = 1 * 2**30,
        read_bw: float = 1e9,
        write_bw: float = 266e6,
    ) -> VMInstance:
        """Start a VM instance from the base image on ``node``.

        ``approach`` selects the Table 1 storage strategy; ``pvfs-shared``
        VMs are wired to the PVFS deployment, everything else to the
        striped repository.
        """
        if name in self.vms:
            raise ValueError(f"VM name {name!r} already in use")
        spec = self.cluster.spec
        cls = manager_class(approach)
        repo = self.cluster.pvfs if approach == "pvfs-shared" else self.cluster.repository
        vm = VMInstance(
            self.env,
            name,
            memory_size=memory_size,
            working_set=working_set,
            read_bw=read_bw,
            write_bw=write_bw,
        )
        vdisk = VirtualDisk(
            self.env,
            size=spec.image_size,
            chunk_size=spec.chunk_size,
            disk=node.disk,
            name=f"{name}@src",
            base_allocated=spec.base_allocated,
        )
        manager = cls(
            self.env,
            vm,
            node,
            vdisk,
            repo,
            self.cluster.fabric,
            self.collector,
            self.config,
        )
        vm.place(node, manager)
        self.vms[name] = vm
        return vm

    def checkpoint(self, vm: VMInstance, service) -> Process:
        """BlobCR-style crash-consistent disk checkpoint: pause the VM,
        drain its in-flight I/O, snapshot, resume.

        Returns a process yielding the
        :class:`~repro.core.snapshot.DiskSnapshot`.
        """

        def run():
            vm.pause()
            yield from vm.drain_io()
            try:
                snapshot = yield from service.take(vm.manager)
            finally:
                vm.resume()
            return snapshot

        return self.env.process(run(), name=f"checkpoint:{vm.name}")

    def deploy_from_snapshot(
        self,
        name: str,
        node: ComputeNode,
        snapshot,
        service,
        approach: str = "our-approach",
        **vm_kwargs,
    ) -> tuple[VMInstance, Process]:
        """Deploy a new VM whose disk starts from ``snapshot`` (the
        multideployment pattern of [26]).

        Returns ``(vm, restore_process)``; the VM's disk view is ready
        once the restore process completes.
        """
        vm = self.deploy(name, node, approach=approach, **vm_kwargs)
        proc = self.env.process(
            service.restore_into(snapshot, vm.manager),
            name=f"restore:{name}",
        )
        return vm, proc

    def migrate(
        self,
        vm: VMInstance,
        dst_node: ComputeNode,
        memory: Optional[object] = None,
        restarts: int = 0,
    ) -> Process:
        """Initiate a live migration; returns the migration process (an
        event yielding the final MigrationRecord).

        With ``restarts > 0`` an aborted attempt (destination failure,
        retry exhaustion, watchdog) is re-issued after
        ``config.restart_backoff`` seconds, up to ``restarts`` extra
        attempts — abort-and-restart: the VM kept running on the source
        throughout, so another attempt is always safe.  Restarting is
        skipped while the destination node is marked failed.
        """

        def one_attempt():
            migration = LiveMigration(
                self.env,
                self.cluster.fabric,
                vm,
                dst_node,
                self.collector,
                memory=memory,
                config=vm.manager.config,
            )
            return self.env.process(migration.run(), name=f"migrate:{vm.name}")

        if restarts <= 0:
            return one_attempt()

        def attempts():
            record = yield one_attempt()
            for n in range(restarts):
                if not record.aborted:
                    return record
                yield self.env.timeout(vm.manager.config.restart_backoff)
                if getattr(dst_node, "failed", False):
                    # The destination is (still) down; a fresh attempt
                    # would abort again without moving a byte.
                    continue
                tr = self.env.tracer
                if tr.enabled:
                    tr.instant("migration.restart", cat="migration",
                               tid=f"migration:{vm.name}",
                               args={"attempt": n + 1})
                mx = self.env.metrics
                if mx.enabled:
                    mx.counter("migration.restarts").inc()
                record = yield one_attempt()
            return record

        return self.env.process(attempts(), name=f"migrate-retry:{vm.name}")
