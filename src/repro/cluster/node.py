"""A compute node: network attachment + local disk."""

from __future__ import annotations

from repro.netsim.topology import Host
from repro.storage.disk import LocalDisk

__all__ = ["ComputeNode"]


class ComputeNode:
    """One physical machine of the datacenter."""

    def __init__(self, name: str, host: Host, disk: LocalDisk):
        self.name = name
        self.host = host
        self.disk = disk
        #: Set by fault injection on a node crash; the network/disk
        #: effects are injected on the host and fabric directly.
        self.failed = False

    def __repr__(self) -> str:
        return f"<ComputeNode {self.name}>"
