"""Migration-based datacenter management policies.

The paper's introduction motivates live migration with four management
tasks — load balancing, online maintenance, power management and
pro-active fault tolerance — and its Figure 1 places the "VM scheduling
strategies that leverage live migration" in the cloud middleware.  This
module is that layer: policies that decide *which* VM moves *where*, and
drive the migrations through :class:`~repro.cluster.cloud.CloudMiddleware`.

All policies operate on live placement (``vm.node``), run their
migrations concurrently where the policy allows, and return the
:class:`~repro.metrics.collector.MigrationRecord` list so callers can
account time and traffic.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional

from repro.cluster.node import ComputeNode
from repro.simkernel.core import Process

__all__ = ["DatacenterScheduler"]


class DatacenterScheduler:
    """Placement policies over a cloud's VMs.

    Parameters
    ----------
    cloud:
        The middleware to deploy/migrate through.
    capacity:
        Maximum VMs a node may host (consolidation/balancing constraint).
    """

    def __init__(self, cloud, capacity: int = 4):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.cloud = cloud
        self.env = cloud.env
        self.capacity = int(capacity)

    # -- placement queries -----------------------------------------------------
    def vms_on(self, node: ComputeNode) -> list:
        return [vm for vm in self.cloud.vms.values() if vm.node is node]

    def occupancy(self) -> dict[str, int]:
        """VM count per node name (all cluster nodes, including empty)."""
        counts = {n.name: 0 for n in self.cloud.cluster.nodes}
        for vm in self.cloud.vms.values():
            counts[vm.node.name] += 1
        return counts

    def node_write_pressure(self, node: ComputeNode) -> float:
        """Aggregate recent guest write rate on ``node`` (bytes/s)."""
        return sum(vm.recent_write_rate() for vm in self.vms_on(node))

    def _least_loaded(
        self, exclude: Iterable[ComputeNode] = (), below_capacity: bool = True
    ) -> Optional[ComputeNode]:
        exclude = set(exclude)
        counts = self.occupancy()
        candidates = [
            n for n in self.cloud.cluster.nodes
            if n not in exclude
            and (not below_capacity or counts[n.name] < self.capacity)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda n: (self.occupancy()[n.name], n.name))

    # -- policies ------------------------------------------------------------
    def evacuate(self, node: ComputeNode, memory=None) -> Process:
        """Online maintenance: move every VM off ``node`` (concurrently,
        to the least-loaded other nodes).  Yields the migration records."""
        return self.env.process(
            self._evacuate(node, memory), name=f"evacuate:{node.name}"
        )

    def _evacuate(self, node: ComputeNode, memory) -> Generator:
        vms = self.vms_on(node)
        migrations = []
        taken: dict[str, int] = {}
        for vm in vms:
            counts = self.occupancy()
            candidates = [
                n for n in self.cloud.cluster.nodes
                if n is not node
                and counts[n.name] + taken.get(n.name, 0) < self.capacity
            ]
            if not candidates:
                raise RuntimeError(
                    f"no capacity left to evacuate {vm.name} from {node.name}"
                )
            target = min(
                candidates,
                key=lambda n: (counts[n.name] + taken.get(n.name, 0), n.name),
            )
            taken[target.name] = taken.get(target.name, 0) + 1
            migrations.append(self.cloud.migrate(vm, target, memory=memory))
        records = []
        for proc in migrations:
            records.append((yield proc))
        return records

    def consolidate(self, memory=None) -> Process:
        """Power management: pack VMs from lightly-loaded nodes onto the
        more heavily-loaded ones (without exceeding capacity), so emptied
        hosts can be shut down.  Yields ``(records, freed_node_names)``."""
        return self.env.process(self._consolidate(memory), name="consolidate")

    def _consolidate(self, memory) -> Generator:
        records = []
        while True:
            counts = self.occupancy()
            occupied = [
                n for n in self.cloud.cluster.nodes if counts[n.name] > 0
            ]
            if len(occupied) <= 1:
                break
            donor = min(occupied, key=lambda n: (counts[n.name], n.name))
            receivers = [
                n for n in occupied
                if n is not donor
                and counts[n.name] + counts[donor.name] <= self.capacity
            ]
            if not receivers:
                break  # nothing fits anywhere: done
            target = max(receivers, key=lambda n: (counts[n.name], n.name))
            # Move the donor's VMs sequentially (same source NIC anyway).
            for vm in self.vms_on(donor):
                records.append(
                    (yield self.cloud.migrate(vm, target, memory=memory))
                )
        counts = self.occupancy()
        freed = sorted(name for name, c in counts.items() if c == 0)
        return records, freed

    def balance(self, memory=None) -> Process:
        """Load balancing: even out VM counts until no node differs from
        another by more than one VM.  Yields the migration records."""
        return self.env.process(self._balance(memory), name="balance")

    def _balance(self, memory) -> Generator:
        records = []
        while True:
            counts = self.occupancy()
            names = sorted(counts, key=lambda n: (counts[n], n))
            low_name, high_name = names[0], names[-1]
            if counts[high_name] - counts[low_name] <= 1:
                break
            by_name = {n.name: n for n in self.cloud.cluster.nodes}
            donor, target = by_name[high_name], by_name[low_name]
            vm = self.vms_on(donor)[0]
            records.append((yield self.cloud.migrate(vm, target, memory=memory)))
        return records
