"""simlint pragma parsing.

Five comment pragmas are recognised::

    # simlint: exact                      (module-level: declare F-rule
                                           exact scope — dataflow proves
                                           the rest)
    # simlint: host-time                  (module-level: waive D101/D102 —
                                           sanctioned host-clock reads)
    # simlint: module=repro.core.thing    (module-level: override identity)
    env.process(reaper())  # simlint: daemon -- reaper outlives the scope
    x = wall / 1e6  # simlint: ignore[D101] -- trace timestamps are floats

``ignore[...]`` takes a comma-separated list of rule ids or family
letters and applies to the line it sits on; ``daemon`` is sugar for
``ignore[K404]`` (a deliberate fire-and-forget process).  Text after
``--`` is the suppression's *reason* — it is carried into the budget
report and the committed baseline, so every standing suppression
documents itself.  Suppressions never vanish: each one is reported in
the suppression budget, flagged as unused when no finding matched it.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterator

_PRAGMA = re.compile(r"#\s*simlint:\s*(?P<body>[^#]*)")
_IGNORE = re.compile(r"ignore\[(?P<rules>[A-Za-z0-9_,\s]+)\]")
_MODULE = re.compile(r"module\s*=\s*(?P<name>[A-Za-z_][\w.]*)")


@dataclass
class Suppression:
    """One ``ignore[...]`` (or ``daemon``) pragma on one line."""

    line: int
    rules: tuple[str, ...]
    used: bool = False
    reason: str = ""

    def matches(self, rule: str) -> bool:
        # A bare family letter ("F") suppresses the whole family.
        return any(rule == r or rule.startswith(r) for r in self.rules)

    def as_dict(self) -> dict:
        return {"line": self.line, "rules": list(self.rules),
                "used": self.used, "reason": self.reason}


@dataclass
class FilePragmas:
    """All pragmas found in one source file."""

    exact: bool = False
    host_time: bool = False
    module_override: str | None = None
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    def suppression_for(self, line: int, rule: str) -> Suppression | None:
        sup = self.suppressions.get(line)
        if sup is not None and sup.matches(rule):
            return sup
        return None


def _comment_tokens(source: str) -> Iterator[tuple[int, str]]:
    """(line, text) for every real COMMENT token.

    Tokenizing (rather than scanning lines) keeps pragma *mentions*
    inside strings and docstrings — like the ones in this module — from
    counting as live pragmas.
    """
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparsable tail (the AST parse will report it); keep whatever
        # comments tokenized before the error.
        return


def parse_pragmas(source: str) -> FilePragmas:
    out = FilePragmas()
    for lineno, text in _comment_tokens(source):
        m = _PRAGMA.search(text)
        if m is None:
            continue
        body = m.group("body").strip()
        head, _, tail = body.partition("--")
        reason = tail.strip()
        ig = _IGNORE.search(head)
        if ig is not None:
            rules = tuple(
                sorted({r.strip() for r in ig.group("rules").split(",") if r.strip()})
            )
            if rules:
                out.suppressions[lineno] = Suppression(
                    line=lineno, rules=rules, reason=reason)
            continue
        mod = _MODULE.search(head)
        if mod is not None:
            out.module_override = mod.group("name")
            continue
        word = head.strip()
        if word == "exact":
            out.exact = True
        elif word == "host-time":
            out.host_time = True
        elif word == "daemon":
            # A deliberate fire-and-forget process: suppresses K404 on
            # this line, reported in the budget like any ignore[...].
            out.suppressions[lineno] = Suppression(
                line=lineno, rules=("K404",), reason=reason or "daemon")
    return out
