"""simlint pragma parsing.

Four comment pragmas are recognised::

    # simlint: exact                      (module-level: opt into X rules)
    # simlint: host-time                  (module-level: waive D101/D102 —
                                           sanctioned host-clock reads)
    # simlint: module=repro.core.thing    (module-level: override identity)
    x = wall / 1e6  # simlint: ignore[X201] -- trace timestamps are floats

``ignore[...]`` takes a comma-separated list of rule ids or family
letters and applies to the line it sits on.  Suppressions never vanish:
each one is reported in the suppression budget, flagged as unused when
no finding matched it.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_PRAGMA = re.compile(r"#\s*simlint:\s*(?P<body>[^#]*)")
_IGNORE = re.compile(r"ignore\[(?P<rules>[A-Za-z0-9_,\s]+)\]")
_MODULE = re.compile(r"module\s*=\s*(?P<name>[A-Za-z_][\w.]*)")


@dataclass
class Suppression:
    """One ``ignore[...]`` pragma on one line."""

    line: int
    rules: tuple[str, ...]
    used: bool = False

    def matches(self, rule: str) -> bool:
        # A bare family letter ("X") suppresses the whole family.
        return any(rule == r or rule.startswith(r) for r in self.rules)

    def as_dict(self) -> dict:
        return {"line": self.line, "rules": list(self.rules), "used": self.used}


@dataclass
class FilePragmas:
    """All pragmas found in one source file."""

    exact: bool = False
    host_time: bool = False
    module_override: str | None = None
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    def suppression_for(self, line: int, rule: str) -> Suppression | None:
        sup = self.suppressions.get(line)
        if sup is not None and sup.matches(rule):
            return sup
        return None


def _comment_tokens(source: str):
    """(line, text) for every real COMMENT token.

    Tokenizing (rather than scanning lines) keeps pragma *mentions*
    inside strings and docstrings — like the ones in this module — from
    counting as live pragmas.
    """
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparsable tail (the AST parse will report it); keep whatever
        # comments tokenized before the error.
        return


def parse_pragmas(source: str) -> FilePragmas:
    out = FilePragmas()
    for lineno, text in _comment_tokens(source):
        m = _PRAGMA.search(text)
        if m is None:
            continue
        body = m.group("body").strip()
        ig = _IGNORE.search(body)
        if ig is not None:
            rules = tuple(
                sorted({r.strip() for r in ig.group("rules").split(",") if r.strip()})
            )
            if rules:
                out.suppressions[lineno] = Suppression(line=lineno, rules=rules)
            continue
        mod = _MODULE.search(body)
        if mod is not None:
            out.module_override = mod.group("name")
            continue
        word = body.split("--")[0].strip()
        if word == "exact":
            out.exact = True
        elif word == "host-time":
            out.host_time = True
    return out
