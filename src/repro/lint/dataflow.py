"""Intraprocedural dataflow over the AST: definitions, chains, witnesses.

This is the shared substrate under the proof-carrying rule families
(F float-taint, P probe purity, the K yield/spawn upgrade).  It stays
deliberately small and deterministic:

* **Reaching definitions, flow-insensitively merged per name.**
  :func:`collect_defs` walks one function body (never descending into
  nested ``def``/``lambda``) and records every statement that binds a
  local name — plain and annotated assignments, augmented assignments,
  ``for`` targets, ``with ... as`` aliases and walrus expressions.  A
  domain (taint, Event-ness, probe handles) evaluates the recorded
  value expressions and merges over all defs of a name, so loops and
  branches are handled conservatively without a CFG.

* **Name chains.**  :func:`attr_chain` flattens ``self.env.series``
  into ``("self", "env", "series")`` — the currency of receiver
  classification — and :func:`rooted_call_chain` extends that through
  call results (``mx.counter("x").inc()`` roots at ``mx``).

* **Witness paths.**  A :class:`Hop` is one step of a def → flow → sink
  explanation; rules thread tuples of hops through their domain values
  so every finding can print exactly how the bad value travelled.
  Hops order by source location, making rendered witnesses stable.

Everything here is pure syntax — no imports are executed, no module
objects touched — so the engine stays safe to run on arbitrary trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

__all__ = [
    "Def",
    "Hop",
    "attr_chain",
    "collect_defs",
    "hop",
    "local_functions",
    "rooted_call_chain",
    "walk_own",
]

#: Cap on rendered witness length: enough for def → flow → sink chains,
#: short enough that a pathological cycle cannot bloat the report.
MAX_HOPS = 8


@dataclass(frozen=True, order=True)
class Hop:
    """One step of a witness path (a source location plus what happened)."""

    line: int
    col: int
    note: str

    def as_dict(self) -> dict:
        return {"line": self.line, "col": self.col, "note": self.note}


def hop(node: ast.AST, note: str) -> Hop:
    """A :class:`Hop` anchored at ``node``'s location."""
    return Hop(line=getattr(node, "lineno", 1),
               col=getattr(node, "col_offset", 0) + 1,
               note=note)


def cap_hops(hops: tuple[Hop, ...]) -> tuple[Hop, ...]:
    """Bound a witness chain, keeping the origin and the latest steps."""
    if len(hops) <= MAX_HOPS:
        return hops
    return hops[:1] + hops[-(MAX_HOPS - 1):]


@dataclass(frozen=True)
class Def:
    """One binding of a local name.

    ``expr`` is the bound value expression when one exists syntactically
    (``None`` for ``for`` targets, ``with ... as`` without a chain, and
    tuple-unpack elements — domains treat those as unknown).  ``aug`` is
    True for augmented assignments, whose effective value is
    ``<old> <op> expr``.
    """

    name: str
    node: ast.AST
    expr: Optional[ast.expr]
    aug: bool = False


def walk_own(root: ast.AST | Iterable[ast.stmt]) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function/class defs.

    Accepts either a single node or a statement list (a function body).
    The root itself is not yielded when it is a function definition —
    only the nodes that belong to *its* body.
    """
    stack: list[ast.AST] = (
        list(root) if isinstance(root, list) else [root]
    )
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def collect_defs(body: list[ast.stmt]) -> dict[str, list[Def]]:
    """Every local-name binding in ``body``, in deterministic order.

    Nested ``def``/``class``/``lambda`` scopes are skipped — their
    bindings are not this scope's locals.  Comprehension variables are
    likewise invisible (they live in their own scope on Python 3).
    """
    out: dict[str, list[Def]] = {}

    def record(name: str, node: ast.AST, expr: Optional[ast.expr],
               aug: bool = False) -> None:
        out.setdefault(name, []).append(Def(name, node, expr, aug))

    def record_target(target: ast.expr, node: ast.AST,
                      expr: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            record(target.id, node, expr)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                # Unpacked elements: the per-element value is unknown.
                record_target(elt, node, None)
        elif isinstance(target, ast.Starred):
            record_target(target.value, node, None)
        # Attribute/Subscript targets are stores to objects, not local
        # bindings — the probe-purity rules inspect those separately.

    for node in walk_own(body):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record_target(target, node, node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                record_target(node.target, node, node.value)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                record(node.target.id, node, node.value, aug=True)
        elif isinstance(node, ast.For):
            record_target(node.target, node, None)
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                record_target(node.optional_vars, node.context_expr,
                              node.context_expr)
        elif isinstance(node, ast.NamedExpr):
            if isinstance(node.target, ast.Name):
                record(node.target.id, node, node.value)
    for defs in out.values():
        defs.sort(key=lambda d: (getattr(d.node, "lineno", 0),
                                 getattr(d.node, "col_offset", 0)))
    return out


def attr_chain(node: ast.expr) -> Optional[tuple[str, ...]]:
    """``self.env.series`` → ``("self", "env", "series")``; None otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


def rooted_call_chain(node: ast.expr) -> Optional[tuple[str, ...]]:
    """Like :func:`attr_chain`, but sees through intermediate calls.

    ``mx.counter("x").inc`` resolves to ``("mx", "counter", "inc")`` so a
    receiver classification can follow fluent APIs back to their root.
    Subscripts are skipped the same way (``self.vms[i].fabric`` roots at
    ``self``).
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return tuple(reversed(parts))
        else:
            return None


def local_functions(tree: ast.AST) -> dict[str, ast.FunctionDef]:
    """Module-local callables by bare name, for one-hop call summaries.

    Collects top-level functions and class methods.  A name bound more
    than once (two classes with a same-named method) is dropped — a
    one-hop summary must never guess between bodies.
    """
    seen: dict[str, Optional[ast.FunctionDef]] = {}
    if not isinstance(tree, ast.Module):
        return {}
    scopes: list[list[ast.stmt]] = [tree.body]
    scopes.extend(
        node.body for node in tree.body if isinstance(node, ast.ClassDef)
    )
    for scope in scopes:
        for node in scope:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(node, ast.AsyncFunctionDef):
                    continue
                if node.name in seen:
                    seen[node.name] = None  # ambiguous: refuse to summarise
                else:
                    seen[node.name] = node
    return {name: fn for name, fn in seen.items() if fn is not None}
