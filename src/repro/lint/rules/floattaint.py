"""F — float-taint rules: a dataflow proof of Fraction exactness.

The X family trusted the ``# simlint: exact`` marker and pattern-matched
float syntax anywhere in the file.  The F family replaces it with an
actual proof obligation: inside exact-scope modules (the configured
``exact_modules`` plus anything carrying the marker, which is now a pure
scope declaration), values that *originate in float-land* — non-integral
float literals, true division, ``math.*``/``time.*`` returns — are
tracked through assignments and local calls, and flagged only when they
**reach an exact sink**:

``F601``
    A tainted value is passed to a ``Fraction(...)`` constructor.
    ``Fraction(0.1)`` captures the binary approximation, not the decimal
    the author wrote, and every downstream "exact" comparison inherits
    the lie.
``F602``
    A tainted value is mixed into Fraction arithmetic — stored into a
    name that elsewhere holds a ``Fraction`` accumulator, combined with
    a Fraction operand in a binary expression, or compared against one.
    Mixing coerces the Fraction to float and silently demotes a
    zero-residual conservation check to an epsilon comparison.
``F603``
    The module imports ``math`` or ``time`` at runtime.  Both exist to
    produce floats (or wall-clock readings); an exact-scope module has
    no business importing either outside ``TYPE_CHECKING``.

Float-land computation that never reaches a sink is *fine* — exact
modules legitimately render percentages and speedups for humans.  That
is precisely what the old X family could not express, and why its three
standing suppressions in ``attribution.py`` are gone.

Every F601/F602 finding carries a witness path: origin hop, each
assignment the taint travelled through, and the sink.
"""

from __future__ import annotations

import ast

from repro.lint.config import in_scope
from repro.lint.dataflow import cap_hops, collect_defs, hop, walk_own
from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, iter_function_defs
from repro.lint.taint import TaintAnalysis, Value

_HINT_CTOR = ("construct Fractions from ints, strings or other Fractions; "
              "a float argument bakes its binary approximation into the "
              "'exact' value")
_HINT_MIX = ("keep conservation arithmetic in Fraction-land end to end; "
             "convert to float only at the rendering boundary, after the "
             "exact checks")
_HINT_IMPORT = ("math/time produce floats and wall-clock readings; exact "
                "modules must not import them (move the float math to a "
                "non-exact rendering module)")

_TAINT_IMPORTS = {"math", "time"}


def check(ctx: FileContext) -> list[Finding]:
    if not (in_scope(ctx.module, ctx.config.exact_modules)
            or ctx.pragmas.exact):
        return []
    out: list[Finding] = []
    out.extend(_check_imports(ctx))
    analysis = TaintAnalysis(ctx)
    scopes: list[list[ast.stmt]] = [ctx.tree.body] if isinstance(
        ctx.tree, ast.Module) else []
    scopes.extend(fn.body for fn in iter_function_defs(ctx.tree))
    for body in scopes:
        out.extend(_check_scope(ctx, analysis, body))
    return out


def _check_imports(ctx: FileContext) -> list[Finding]:
    out: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            names = [a.name for a in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            names = [node.module or ""]
        else:
            continue
        if node.lineno in ctx.type_checking_lines:
            continue
        out.extend(
            ctx.finding(node, "F603",
                        f"exact-scope module imports '{name}'", _HINT_IMPORT)
            for name in names if name.split(".")[0] in _TAINT_IMPORTS
        )
    return out


def _check_scope(ctx: FileContext, analysis: TaintAnalysis,
                 body: list[ast.stmt]) -> list[Finding]:
    out: list[Finding] = []
    env = analysis.function_env(body)
    defs = collect_defs(body)

    # Names that are proven Fraction at some (non-augmented) definition:
    # these are the module's exact accumulators, and every *other* def of
    # the same name is a store into exact state.
    fraction_names = {
        name
        for name, dlist in defs.items()
        if any(d.expr is not None and not d.aug
               and analysis.evaluate(d.expr, env).fraction
               for d in dlist)
    }

    for name in sorted(fraction_names):
        for d in defs[name]:
            if d.expr is None:
                continue
            v = analysis.evaluate(d.expr, env)
            if v.tainted:
                out.append(_witnessed(
                    ctx, d.node, "F602",
                    f"float-tainted value stored into Fraction "
                    f"accumulator '{name}'", _HINT_MIX,
                    v, d.node, f"stored into exact '{name}'"))

    for node in walk_own(body):
        if isinstance(node, ast.Call) and analysis.is_fraction_ctor(node.func):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                v = analysis.evaluate(arg, env)
                if v.tainted:
                    out.append(_witnessed(
                        ctx, arg, "F601",
                        "float-tainted value passed to Fraction(...)",
                        _HINT_CTOR, v, node, "sink: Fraction(...)"))
        elif isinstance(node, ast.BinOp):
            lv = analysis.evaluate(node.left, env)
            rv = analysis.evaluate(node.right, env)
            bad = lv if (rv.fraction and lv.tainted) else (
                rv if (lv.fraction and rv.tainted) else None)
            if bad is not None:
                out.append(_witnessed(
                    ctx, node, "F602",
                    "float-tainted operand mixed into Fraction arithmetic",
                    _HINT_MIX, bad, node, "mixed with Fraction here"))
        elif isinstance(node, ast.Compare):
            sides = [node.left] + list(node.comparators)
            values = [analysis.evaluate(s, env) for s in sides]
            if any(v.fraction for v in values):
                out.extend(
                    _witnessed(ctx, side, "F602",
                               "float-tainted value compared against a "
                               "Fraction", _HINT_MIX,
                               v, node, "compared with Fraction here")
                    for side, v in zip(sides, values) if v.tainted
                )
    return out


def _witnessed(ctx: FileContext, node: ast.AST, rule: str, message: str,
               hint: str, value: Value, sink: ast.AST,
               sink_note: str) -> Finding:
    assert value.taint is not None
    witness = cap_hops(value.taint + (hop(sink, sink_note),))
    return ctx.finding(node, rule, message, hint).with_witness(witness)
