"""X — exactness rules.

Modules that implement the conservation checks (byte attribution,
critical-path decomposition) do their accounting on
:class:`fractions.Fraction` so equality is exact by construction.  A
float literal or ``math.*`` call slipping into that arithmetic turns the
exact check into an epsilon comparison — silently.  These rules keep
float coercions at the declared presentation boundary.

A module is exact when listed in ``LintConfig.exact_modules`` or when it
carries a ``# simlint: exact`` pragma.  Genuine float boundaries (e.g.
parsing microsecond trace timestamps) suppress per line with a reason.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, resolved_name

_HINT_FRACTION = ("exact accounting is Fraction-only; convert at the "
                  "boundary with Fraction(...) or suppress with a reason "
                  "if this line genuinely lives in float-land")


def check(ctx: FileContext) -> list[Finding]:
    if ctx.module not in ctx.config.exact_modules and not ctx.pragmas.exact:
        return []
    out: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            mods = ([alias.name for alias in node.names]
                    if isinstance(node, ast.Import) else [node.module or ""])
            if any(mod.split(".")[0] == "math" for mod in mods):
                out.append(ctx.finding(node, "X202",
                                       "'math' imported in an exact module",
                                       _HINT_FRACTION))
        elif isinstance(node, (ast.Attribute, ast.Name)):
            name = resolved_name(ctx, node)
            if name and name.startswith("math."):
                out.append(ctx.finding(node, "X202",
                                       f"'{name}' in exact accounting",
                                       _HINT_FRACTION))
        elif isinstance(node, ast.BinOp):
            for side in (node.left, node.right):
                if _is_float_literal(side):
                    out.append(ctx.finding(side, "X201",
                                           "float literal in exact arithmetic",
                                           _HINT_FRACTION))
                elif _is_float_call(side):
                    out.append(ctx.finding(side, "X203",
                                           "float() coercion feeding exact "
                                           "arithmetic", _HINT_FRACTION))
        elif isinstance(node, ast.AugAssign):
            if _is_float_literal(node.value):
                out.append(ctx.finding(node.value, "X201",
                                       "float literal in exact arithmetic",
                                       _HINT_FRACTION))
            elif _is_float_call(node.value):
                out.append(ctx.finding(node.value, "X203",
                                       "float() coercion feeding exact "
                                       "arithmetic", _HINT_FRACTION))
    return out


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_float_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float")
