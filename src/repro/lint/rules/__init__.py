"""Rule registry: one module per family, one ``check`` entry point each."""

from __future__ import annotations

from repro.lint.rules import (
    causetags,
    determinism,
    floattaint,
    kernelsafety,
    probes,
    structure,
)

#: family letter -> check(ctx) callable.  Order is the report order for
#: same-location findings.  The X family (syntactic exactness) was
#: retired in favour of F: same invariant, proven by dataflow instead of
#: declared by marker.
ALL_RULES = {
    "D": determinism.check,
    "F": floattaint.check,
    "C": causetags.check,
    "K": kernelsafety.check,
    "P": probes.check,
    "S": structure.check,
}

__all__ = ["ALL_RULES"]
