"""Rule registry: one module per family, one ``check`` entry point each."""

from __future__ import annotations

from repro.lint.rules import (
    causetags,
    determinism,
    exactness,
    kernelsafety,
    structure,
)

#: family letter -> check(ctx) callable.  Order is the report order for
#: same-location findings.
ALL_RULES = {
    "D": determinism.check,
    "X": exactness.check,
    "C": causetags.check,
    "K": kernelsafety.check,
    "S": structure.check,
}

__all__ = ["ALL_RULES"]
