"""Shared per-file context and AST helpers for the rule families."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.pragmas import FilePragmas


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed source file."""

    path: str                      # as reported in findings (posix, relative)
    module: str                    # dotted module identity (pragma may override)
    tree: ast.AST
    config: LintConfig
    pragmas: FilePragmas
    #: local alias -> imported dotted name ("np" -> "numpy",
    #: "default_rng" -> "numpy.random.default_rng").
    imports: dict[str, str] = field(default_factory=dict)
    #: 1-based line numbers inside ``if TYPE_CHECKING:`` bodies.
    type_checking_lines: set[int] = field(default_factory=set)

    def finding(self, node: ast.AST, rule: str, message: str,
                hint: str = "") -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            hint=hint,
        )


def build_context(path: str, module: str, tree: ast.AST,
                  config: LintConfig, pragmas: FilePragmas) -> FileContext:
    ctx = FileContext(path=path, module=module, tree=tree,
                      config=config, pragmas=pragmas)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                ctx.imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                ctx.imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        elif isinstance(node, ast.If) and _is_type_checking_test(node.test):
            for sub in node.body:
                for inner in ast.walk(sub):
                    lineno = getattr(inner, "lineno", None)
                    if lineno is not None:
                        ctx.type_checking_lines.add(lineno)
    return ctx


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolved_name(ctx: FileContext, node: ast.expr) -> Optional[str]:
    """Dotted name with the leading alias resolved through the imports.

    ``np.random.rand`` -> ``numpy.random.rand`` after ``import numpy as
    np``.  Returns None for non-name expressions and names that do not
    start at an imported alias (locals, attributes of self, ...).
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    target = ctx.imports.get(head)
    if target is None:
        return None
    return f"{target}.{rest}" if rest else target


def keyword_names(call: ast.Call) -> set[Optional[str]]:
    """Keyword argument names of ``call`` (None marks ``**kwargs``)."""
    return {kw.arg for kw in call.keywords}


def iter_function_defs(
        tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def own_yields(fn: ast.FunctionDef) -> list[ast.expr]:
    """Yield/YieldFrom nodes belonging to ``fn`` itself (not nested defs)."""
    out: list[ast.expr] = []
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def decorator_names(fn: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = dotted_name(target)
        if dotted is not None:
            names.add(dotted.split(".")[-1])
    return names
