"""C — cause-tag completeness rules.

Every byte that moves through the simulation is attributed twice: by
*tag* (the channel it crossed) and by *cause* (why it crossed).  The
flight recorder's conservation check (``repro.obs.analyze.attribution``)
can only stay exact if no call site falls back to implicit defaults — a
new ``fabric.transfer(...)`` without an explicit ``cause=`` would bucket
its bytes under the tag name and silently dilute the causal story.

Byte-moving surfaces are identified by the receiver's final attribute
segment (``self.fabric``, ``mgr.repo``, ``self.meter``, ...) combined
with the method name; ``**kwargs`` forwarding is treated as satisfying
the requirement (the keywords may be inside).
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, dotted_name, keyword_names

_HINT = ("pass the keyword explicitly so byte attribution stays "
         "conservative (see docs/static-analysis.md); defaults hide new "
         "call sites from the conservation check")

#: method name -> (receiver kind, required keyword arguments)
_SURFACES = {
    "transfer": ("fabric", ("tag", "cause")),
    "message": ("fabric", ("tag", "cause")),
    "rpc": ("fabric", ("tag", "cause")),
    "fetch": ("repo", ("tag", "cause")),
    "store": ("repo", ("tag", "cause")),
    "add": ("meter", ("cause",)),
}

_RULE_BY_KIND = {"fabric": "C301", "repo": "C302", "meter": "C303"}


def check(ctx: FileContext) -> list[Finding]:
    receivers = {
        "fabric": ctx.config.fabric_receivers,
        "repo": ctx.config.repo_receivers,
        "meter": ctx.config.meter_receivers,
    }
    out: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func,
                                                            ast.Attribute):
            continue
        spec = _SURFACES.get(node.func.attr)
        if spec is None:
            continue
        kind, required = spec
        if not _receiver_matches(node.func.value, receivers[kind]):
            continue
        present = keyword_names(node)
        if None in present:
            continue  # **kwargs forwarding: assume the keywords ride along
        missing = [kw for kw in required if kw not in present]
        if missing:
            recv = dotted_name(node.func.value) or "<expr>"
            out.append(ctx.finding(
                node, _RULE_BY_KIND[kind],
                f"{recv}.{node.func.attr}(...) misses explicit "
                f"{', '.join(f'{kw}=' for kw in missing)}",
                _HINT,
            ))
    return out


def _receiver_matches(node: ast.expr, names: tuple[str, ...]) -> bool:
    """True when the receiver's final segment names a known surface.

    Matches ``fabric``, ``self.fabric``, ``self._fabric`` and
    ``traffic_meter``-style compounds, but not substrings inside other
    words (``parameters`` does not match ``meter``).
    """
    if isinstance(node, ast.Attribute):
        seg = node.attr
    elif isinstance(node, ast.Name):
        seg = node.id
    else:
        return False
    seg = seg.lstrip("_")
    return any(seg == n or seg.endswith("_" + n) for n in names)
