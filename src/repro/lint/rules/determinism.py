"""D — determinism rules.

Simulation code must be a pure function of its inputs and the seeds
threaded from ``repro.experiments.config``: no wall clocks, no calendar
time, no unseeded or process-global randomness, no hash-order-dependent
iteration.  Any of these makes two runs of the same scenario diverge,
breaking bit-identical reruns and every golden fixture downstream.
"""

from __future__ import annotations

import ast

from repro.lint.config import in_scope
from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, resolved_name

#: Seeded-RNG constructors allowed under numpy.random.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64",
                 "Philox", "SFC64", "MT19937", "BitGenerator"}

_HINT_CLOCK = ("simulation time is env.now/env.timeout; wall-clock reads "
               "differ across runs and hosts")
_HINT_RNG = ("thread a seeded numpy.random.default_rng(seed) down from "
             "experiments.config instead of global/unseeded randomness")
_HINT_SET = ("bare set iteration order depends on PYTHONHASHSEED; wrap "
             "the set in sorted(...)")


def check(ctx: FileContext) -> list[Finding]:
    if not in_scope(ctx.module, ctx.config.determinism_modules):
        return []
    # Sanctioned host-time islands (the self-profiler, or a file carrying
    # ``# simlint: host-time``): reading the host clock is their purpose,
    # so D101/D102 are waived.  D103/D104 still apply — a profiler has no
    # business drawing randomness or leaking hash order.
    host_time = ctx.pragmas.host_time or in_scope(
        ctx.module, ctx.config.host_time_modules
    )
    out: list[Finding] = []
    for node in ast.walk(ctx.tree):
        out.extend(_check_import(ctx, node))
        out.extend(_check_use(ctx, node))
        out.extend(_check_set_iteration(ctx, node))
    if host_time:
        out = [f for f in out if f.rule not in ("D101", "D102")]
    return out


def _check_import(ctx: FileContext, node: ast.AST) -> list[Finding]:
    modules: list[tuple[ast.AST, str]] = []
    if isinstance(node, ast.Import):
        modules = [(node, alias.name) for alias in node.names]
    elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
        modules = [(node, node.module)]
    out: list[Finding] = []
    for where, name in modules:
        top = name.split(".")[0]
        if top == "time":
            out.append(ctx.finding(where, "D101",
                                   "wall-clock module 'time' imported "
                                   "in simulation code", _HINT_CLOCK))
        elif top == "datetime":
            out.append(ctx.finding(where, "D102",
                                   "calendar-time module 'datetime' imported "
                                   "in simulation code", _HINT_CLOCK))
        elif top in ("random", "secrets"):
            out.append(ctx.finding(where, "D103",
                                   f"module '{top}' is process-global "
                                   "randomness", _HINT_RNG))
    return out


def _check_use(ctx: FileContext, node: ast.AST) -> list[Finding]:
    if not isinstance(node, (ast.Attribute, ast.Name)):
        return []
    # Only flag the outermost attribute of a chain once: the parent walk
    # visits sub-attributes too, so restrict to full resolved names we
    # recognise exactly.
    name = resolved_name(ctx, node)
    if name is None:
        return []
    top = name.split(".")[0]
    if top == "time" and name != "time":
        return [ctx.finding(node, "D101", f"wall-clock read '{name}'",
                            _HINT_CLOCK)]
    if top == "datetime" and name != "datetime":
        return [ctx.finding(node, "D102", f"calendar-time use '{name}'",
                            _HINT_CLOCK)]
    if top in ("random", "secrets") and name != top:
        return [ctx.finding(node, "D103",
                            f"'{name}' draws from process-global randomness",
                            _HINT_RNG)]
    if name in ("os.urandom", "uuid.uuid1", "uuid.uuid4"):
        return [ctx.finding(node, "D103", f"'{name}' is entropy-seeded",
                            _HINT_RNG)]
    if name.startswith("numpy.random."):
        leaf = name.split(".")[-1]
        if leaf not in _NP_RANDOM_OK:
            return [ctx.finding(node, "D103",
                                f"'{name}' uses numpy's process-global RNG",
                                _HINT_RNG)]
    return []


def _check_set_iteration(ctx: FileContext, node: ast.AST) -> list[Finding]:
    out: list[Finding] = []
    iters: list[ast.expr] = []
    if isinstance(node, ast.For):
        iters.append(node.iter)
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)):
        iters.extend(gen.iter for gen in node.generators)
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        # list(set(..)) / tuple(set(..)) / enumerate(set(..)): the
        # wrapper preserves the set's hash order.
        if node.func.id in ("list", "tuple", "enumerate", "iter") and node.args:
            iters.append(node.args[0])
    out.extend(
        ctx.finding(it, "D104", "iteration over a bare set leaks "
                                "PYTHONHASHSEED order", _HINT_SET)
        for it in iters if _is_bare_set(ctx, it)
    )
    # Unseeded default_rng() is caught here rather than in _check_use
    # because it needs the Call arguments.
    if isinstance(node, ast.Call):
        name = resolved_name(ctx, node.func)
        if (name == "numpy.random.default_rng"
                and not node.args and not node.keywords):
            out.append(ctx.finding(node, "D103",
                                   "numpy.random.default_rng() without a seed",
                                   _HINT_RNG))
    return out


def _is_bare_set(ctx: FileContext, node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "set"
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr,
                                                            ast.BitAnd,
                                                            ast.Sub)):
        # set algebra (a | b, a & b, a - b) over set displays.
        return _is_bare_set(ctx, node.left) or _is_bare_set(ctx, node.right)
    return False
