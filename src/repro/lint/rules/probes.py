"""P — probe-purity rules: telemetry blocks must be observe-only.

PR 9's instrumentation idiom guards every recording site on the
recorder's null-object flag::

    sr = self.env.series
    if sr.enabled:
        sr.gauge("hybrid.window_bytes", now, self._window_bytes)

The whole design rests on those blocks being *pure observers*: with
telemetry off they are skipped entirely, so anything they do beyond
reading state and calling the recorder makes enabled and disabled runs
diverge — the exact bug class the differential suites exist to catch,
except baked into the instrumentation itself.  These rules prove the
property statically, per guarded block, inside the simulation packages
(``probe_modules``):

``P701``
    A store inside a probe block: assignment/deletion through an
    attribute or subscript not rooted at a probe handle, or a mutating
    method call (``append``, ``update``, ``pop``, ...) on sim-rooted
    state.  Local names are fair game — computing a value to report is
    what probes do.
``P702``
    Event scheduling inside a probe block: ``env.timeout(...)``,
    ``env.process(...)``, ``event.succeed()``, ``timer.arm(...)`` and
    friends.  A probe that schedules work changes the event sequence.
``P703``
    A byte-moving surface called inside a probe block: ``meter.add``,
    ``fabric.transfer/message/rpc``, ``repo.fetch/store`` (the same
    receiver heuristics the C family uses).  Telemetry must never move
    or account bytes itself — it reads the meters others wrote.

A *probe handle* is any local bound from an attribute chain whose final
segment is one of ``probe_attrs`` (``series``, ``tracer``, ``metrics``,
``profiler``), or such a chain used directly; a *probe block* is an
``if`` whose test reads ``.enabled`` off a handle.  Calls that root at a
handle — including fluent ones like ``mx.counter("x").inc()`` and
sub-recorders like ``tr.causal.record_wait(...)`` — are always allowed.

Witness paths record where the handle was bound, which guard opened the
block, and the offending operation.
"""

from __future__ import annotations

import ast
from typing import Callable, Optional

from repro.lint.config import in_scope
from repro.lint.dataflow import (
    Hop,
    attr_chain,
    cap_hops,
    collect_defs,
    hop,
    rooted_call_chain,
    walk_own,
)
from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, iter_function_defs

_HINT_STORE = ("probe blocks run only when telemetry is on; a store here "
               "makes instrumented and plain runs diverge — move the "
               "mutation outside the enabled-guard")
_HINT_SCHED = ("scheduling from a probe changes the event sequence of "
               "instrumented runs; probes may only read state and call "
               "the recorder")
_HINT_BYTES = ("byte accounting belongs to the simulation proper; the "
               "probe should read meter totals, never write them")

#: Method names that mutate their receiver in-place.
_MUTATORS = {"append", "appendleft", "extend", "insert", "remove", "pop",
             "popleft", "clear", "add", "discard", "update", "setdefault",
             "sort", "reverse", "fill", "write", "writelines"}

#: Final attributes that schedule or fire kernel events.
_SCHEDULERS = {"process", "timeout", "event", "any_of", "all_of", "run",
               "step", "schedule", "_schedule", "succeed", "fail",
               "trigger", "interrupt", "arm", "cancel"}

#: env-factory subset of the schedulers: only flagged when the chain
#: actually roots in the environment (``env.run`` vs an unrelated
#: ``report.run``).
_ENV_ONLY = {"process", "timeout", "event", "any_of", "all_of", "run",
             "step", "schedule", "_schedule"}

#: emit(node, rule, message, hint, witness-note)
_Emit = Callable[[ast.AST, str, str, str, str], None]


def check(ctx: FileContext) -> list[Finding]:
    if not in_scope(ctx.module, ctx.config.probe_modules):
        return []
    out: list[Finding] = []
    for fn in iter_function_defs(ctx.tree):
        out.extend(_check_function(ctx, fn))
    return out


def _probe_rooted(ctx: FileContext, chain: tuple[str, ...],
                  handles: dict[str, Hop]) -> bool:
    """True when ``chain`` reads through telemetry, not sim state."""
    if chain[0] in handles:
        return True
    return any(seg in ctx.config.probe_attrs for seg in chain)


def _sim_rooted(chain: tuple[str, ...], sim_names: set[str]) -> bool:
    return chain[0] in ("self", "cls", "env") or chain[0] in sim_names


def _check_function(ctx: FileContext, fn: ast.FunctionDef) -> list[Finding]:
    defs = collect_defs(fn.body)
    handles: dict[str, Hop] = {}
    sim_names: set[str] = set()
    for name, dlist in defs.items():
        for d in dlist:
            if d.expr is None:
                continue
            chain = attr_chain(d.expr)
            if chain is None or len(chain) < 2:
                continue
            if chain[-1] in ctx.config.probe_attrs \
                    or any(seg in ctx.config.probe_attrs for seg in chain):
                handles[name] = hop(
                    d.node, f"probe handle {name!r} bound from "
                            f"{'.'.join(chain)}")
            elif chain[0] in ("self", "env"):
                # An alias of sim state (vm = self.vm): mutating through
                # it inside a probe block is still a sim mutation.
                sim_names.add(name)

    out: list[Finding] = []
    for node in walk_own(fn.body):
        if not isinstance(node, ast.If):
            continue
        guard = _enabled_guard(ctx, node.test, handles)
        if guard is None:
            continue
        handle_name, guard_hop = guard
        prefix: tuple[Hop, ...] = ()
        if handle_name in handles:
            prefix += (handles[handle_name],)
        prefix += (guard_hop,)
        out.extend(_check_block(ctx, node.body, handles, sim_names, prefix))
    return out


def _enabled_guard(ctx: FileContext, test: ast.expr,
                   handles: dict[str, Hop]) -> Optional[tuple[str, Hop]]:
    """(handle root, guard hop) when ``test`` reads ``.enabled`` off one."""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "enabled":
            chain = attr_chain(node.value)
            if chain is not None and _probe_rooted(ctx, chain, handles):
                return chain[0], hop(
                    node, f"probe block guarded by "
                          f"{'.'.join(chain)}.enabled")
    return None


def _check_block(ctx: FileContext, body: list[ast.stmt],
                 handles: dict[str, Hop], sim_names: set[str],
                 prefix: tuple[Hop, ...]) -> list[Finding]:
    out: list[Finding] = []

    def emit(node: ast.AST, rule: str, message: str, hint: str,
             note: str) -> None:
        witness = cap_hops(prefix + (hop(node, note),))
        out.append(ctx.finding(node, rule, message, hint)
                   .with_witness(witness))

    for node in walk_own(body):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                out.extend(_check_store(ctx, node, target, handles,
                                        emit))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                out.extend(_check_store(ctx, node, target, handles,
                                        emit))
        elif isinstance(node, ast.Call):
            _check_call(ctx, node, handles, sim_names, emit)
    return out


def _check_store(ctx: FileContext, node: ast.AST, target: ast.expr,
                 handles: dict[str, Hop], emit: _Emit) -> list[Finding]:
    # Local name (re)bindings are allowed; object stores are not.
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _check_store(ctx, node, elt, handles, emit)
        return []
    if not isinstance(target, (ast.Attribute, ast.Subscript)):
        return []
    chain = rooted_call_chain(target)
    if chain is not None and _probe_rooted(ctx, chain, handles):
        return []
    label = ".".join(chain) if chain is not None else "<expression>"
    emit(node, "P701",
         f"store to '{label}' inside a probe block", _HINT_STORE,
         f"writes {label} while telemetry-guarded")
    return []


def _check_call(ctx: FileContext, node: ast.Call,
                handles: dict[str, Hop], sim_names: set[str],
                emit: _Emit) -> None:
    chain = rooted_call_chain(node.func)
    if chain is None or len(chain) < 2:
        return
    if _probe_rooted(ctx, chain, handles):
        return
    method = chain[-1]
    dotted = ".".join(chain)
    if method in _SCHEDULERS:
        if method in _ENV_ONLY and "env" not in chain[:-1]:
            pass  # report.run(...), config.step(...): not the kernel
        else:
            emit(node, "P702",
                 f"event scheduling '{dotted}(...)' inside a probe block",
                 _HINT_SCHED, f"schedules via {dotted}")
            return
    receiver = chain[-2].lstrip("_")

    def matches(suffixes: tuple[str, ...]) -> bool:
        return any(receiver == s or receiver.endswith("_" + s)
                   for s in suffixes)

    if (matches(ctx.config.meter_receivers) and method == "add") \
            or (matches(ctx.config.fabric_receivers)
                and method in ("transfer", "message", "rpc")) \
            or (matches(ctx.config.repo_receivers)
                and method in ("fetch", "store")):
        emit(node, "P703",
             f"byte-moving call '{dotted}(...)' inside a probe block",
             _HINT_BYTES, f"moves/accounts bytes via {dotted}")
        return
    if method in _MUTATORS and _sim_rooted(chain, sim_names):
        emit(node, "P701",
             f"mutating call '{dotted}(...)' inside a probe block",
             _HINT_STORE, f"mutates sim state via {dotted}")
