"""S — structure rules.

The simulation stack is layered: ``simkernel`` at the bottom, then
``netsim``, then the storage/hypervisor/repository/workload models, then
``core`` (migration strategies), ``cluster`` and finally
``experiments``/``cli``.  An import that points *up* this DAG couples a
mechanism to its policy — the classic inversion that makes the kernel
untestable in isolation and turns refactors into dependency knots.

Cross-cutting packages (``obs``, ``metrics``, ``faults``, ``lint``) are
deliberately unranked in the global DAG and may be imported from
anywhere — but ``obs`` carries its own sub-DAG (S502): the diff engine
(``repro.obs.diff``) consumes the analysis artifacts and may import
``obs.analyze``/``obs.causal``/``obs.prof``, while nothing else in
``obs.*`` may import ``obs.diff`` back.  Imports inside
``if TYPE_CHECKING:`` blocks are annotations-only and exempt.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext

_HINT = ("the layer DAG is simkernel <- netsim <- storage/hypervisor/"
         "repository/workloads <- core <- cluster <- experiments; move "
         "the shared piece down a layer or invert the dependency "
         "(callback, event, protocol)")

_OBS_HINT = ("repro.obs.diff consumes the analysis artifacts "
             "(summaries, critical paths, profiler trees); producers "
             "must stay importable without it — move the shared piece "
             "into obs.analyze/obs.causal/obs.prof or pass the data in")


def check(ctx: FileContext) -> list[Finding]:
    my_layer = ctx.config.layer_of(ctx.module)
    my_obs_layer = ctx.config.obs_layer_of(ctx.module)
    if my_layer is None and my_obs_layer is None:
        return []
    out: list[Finding] = []
    for node in ast.walk(ctx.tree):
        targets: list[str] = []
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            targets = [node.module] if node.module else []
        elif isinstance(node, ast.ImportFrom) and node.level > 0:
            # Relative import: resolve against this module's package.
            parts = ctx.module.split(".")
            base = parts[: len(parts) - node.level]
            if base:
                targets = [".".join(base + ([node.module] if node.module
                                            else []))]
        if not targets:
            continue
        if node.lineno in ctx.type_checking_lines:
            continue
        for target in targets:
            if my_layer is not None:
                their_layer = ctx.config.layer_of(target)
                if their_layer is not None and their_layer > my_layer:
                    out.append(ctx.finding(
                        node, "S501",
                        f"'{ctx.module}' (layer {my_layer}) imports "
                        f"'{target}' (layer {their_layer}) — upward "
                        "dependency inverts the layer DAG", _HINT))
            if my_obs_layer is not None:
                their_obs = ctx.config.obs_layer_of(target)
                if their_obs is not None and their_obs > my_obs_layer:
                    out.append(ctx.finding(
                        node, "S502",
                        f"'{ctx.module}' (obs rank {my_obs_layer}) "
                        f"imports '{target}' (obs rank {their_obs}) — "
                        "an analysis producer importing the diff engine "
                        "inverts the obs sub-DAG", _OBS_HINT))
    return out
