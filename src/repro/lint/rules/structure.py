"""S — structure rules.

The simulation stack is layered: ``simkernel`` at the bottom, then
``netsim``, then the storage/hypervisor/repository/workload models, then
``core`` (migration strategies), ``cluster`` and finally
``experiments``/``cli``.  An import that points *up* this DAG couples a
mechanism to its policy — the classic inversion that makes the kernel
untestable in isolation and turns refactors into dependency knots.

Cross-cutting packages (``obs``, ``metrics``, ``faults``, ``lint``) are
deliberately unranked and may be imported from anywhere.  Imports inside
``if TYPE_CHECKING:`` blocks are annotations-only and exempt.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext

_HINT = ("the layer DAG is simkernel <- netsim <- storage/hypervisor/"
         "repository/workloads <- core <- cluster <- experiments; move "
         "the shared piece down a layer or invert the dependency "
         "(callback, event, protocol)")


def check(ctx: FileContext) -> list[Finding]:
    my_layer = ctx.config.layer_of(ctx.module)
    if my_layer is None:
        return []
    out: list[Finding] = []
    for node in ast.walk(ctx.tree):
        targets: list[str] = []
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            targets = [node.module] if node.module else []
        elif isinstance(node, ast.ImportFrom) and node.level > 0:
            # Relative import: resolve against this module's package.
            parts = ctx.module.split(".")
            base = parts[: len(parts) - node.level]
            if base:
                targets = [".".join(base + ([node.module] if node.module
                                            else []))]
        if not targets:
            continue
        if node.lineno in ctx.type_checking_lines:
            continue
        for target in targets:
            their_layer = ctx.config.layer_of(target)
            if their_layer is not None and their_layer > my_layer:
                out.append(ctx.finding(
                    node, "S501",
                    f"'{ctx.module}' (layer {my_layer}) imports "
                    f"'{target}' (layer {their_layer}) — upward "
                    "dependency inverts the layer DAG", _HINT))
    return out
