"""K — kernel-safety rules.

Generator functions inside the simulation packages may run as kernel
processes: their ``yield`` targets must be kernel :class:`Event` objects
and their bodies must not block on real-world I/O — a ``print`` or
``open`` inside a process body runs once per simulated event, couples
simulated behaviour to the host filesystem/tty, and (for writes) breaks
run-to-run determinism of any artifact diffing.

K401 (blocking I/O) and K402 (literal yields) are syntactic.  The
dataflow upgrade adds two proof-backed rules:

``K403``
    ``yield name`` where *every* reaching definition of ``name`` is
    provably not an Event — a number, a string, a container, arithmetic,
    a comparison, a clean-builtin call.  One Event-producing or unknown
    definition acquits the yield; the rule only fires on a guaranteed
    scheduler crash, and the finding's witness lists the offending
    definitions.
``K404``
    A spawned process whose handle is discarded: a bare expression
    statement ``env.process(gen(...))``.  Unawaited processes outlive
    scopes silently and their failures vanish; either bind the handle
    (``done = env.process(...)``, later ``yield done``) or mark a
    deliberate daemon with ``# simlint: daemon -- <why>`` (counted in
    the suppression budget like any other pragma).

Decorated generators (``@contextmanager``, ``@pytest.fixture``,
``@property``) are not kernel processes and are exempt.
"""

from __future__ import annotations

import ast

from repro.lint.config import in_scope
from repro.lint.dataflow import (
    attr_chain,
    cap_hops,
    collect_defs,
    hop,
    walk_own,
)
from repro.lint.findings import Finding
from repro.lint.rules.base import (
    FileContext,
    decorator_names,
    iter_function_defs,
    own_yields,
    resolved_name,
)

_HINT_IO = ("simulation processes must not touch real I/O; report via "
            "env.tracer / env.metrics or return data to the caller")
_HINT_YIELD = ("kernel processes may only yield Event objects (timeouts, "
               "transfers, conditions); a literal here would crash the "
               "scheduler at runtime")
_HINT_FLOW = ("every definition reaching this yield is a plain value, not "
              "an Event; yield the result of env.timeout/env.process/"
              "fabric.transfer or another Event factory")
_HINT_SPAWN = ("bind the returned Process (and later yield it) so failures "
               "propagate, or tag a deliberate fire-and-forget with "
               "'# simlint: daemon -- <reason>'")

_EXEMPT_DECORATORS = {"contextmanager", "asynccontextmanager", "fixture",
                      "property", "cached_property"}

#: Builtins that block or leak outside the simulation.
_BLOCKING_BUILTINS = {"open", "print", "input", "breakpoint", "exec", "eval"}

#: Resolved dotted prefixes that block (any attribute below them).
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "shutil.")
_BLOCKING_EXACT = {"os.system", "os.popen", "os.remove", "os.unlink",
                   "time.sleep", "sys.stdout.write", "sys.stderr.write"}


def check(ctx: FileContext) -> list[Finding]:
    if not in_scope(ctx.module, ctx.config.kernel_modules):
        return []
    out: list[Finding] = []
    for fn in iter_function_defs(ctx.tree):
        out.extend(_check_discarded_spawns(ctx, fn))
        yields = own_yields(fn)
        if not yields:
            continue
        if decorator_names(fn) & _EXEMPT_DECORATORS:
            continue
        unreachable = _unreachable_yields(fn)
        defs = collect_defs(fn.body)
        out.extend(_check_blocking(ctx, fn))
        for y in yields:
            if y in unreachable:
                continue
            out.extend(_check_yield(ctx, y))
            out.extend(_check_yield_flow(ctx, y, defs))
    return out


#: Call targets (final attribute or bare name) that produce Events.
_EVENT_FACTORIES = {"event", "timeout", "process", "any_of", "all_of",
                    "transfer", "message", "rpc", "fetch", "store", "wait",
                    "acquire", "request", "annotate", "arm"}
_EVENT_CTORS = {"Event", "Timeout", "Process", "Condition", "AnyOf",
                "AllOf", "Interrupt"}
_NONEVENT_CALLS = {"int", "float", "str", "bool", "len", "abs", "round",
                   "min", "max", "sum", "sorted", "list", "dict", "set",
                   "tuple", "frozenset", "repr", "format", "range",
                   "Fraction"}

_EVENT, _NON_EVENT, _MAYBE = "event", "non-event", "maybe"


def _classify(expr: ast.expr) -> str:
    """Is this expression an Event, definitely not one, or unknown?"""
    if isinstance(expr, ast.Constant):
        return _NON_EVENT
    if isinstance(expr, (ast.List, ast.Tuple, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp,
                         ast.GeneratorExp, ast.JoinedStr,
                         ast.Compare, ast.BoolOp)):
        return _NON_EVENT
    if isinstance(expr, ast.UnaryOp):
        return _classify(expr.operand)
    if isinstance(expr, ast.BinOp):
        if isinstance(expr.op, (ast.BitOr, ast.BitAnd)):
            # Event composition (a | b, a & b) — event iff a side is.
            sides = (_classify(expr.left), _classify(expr.right))
            if _EVENT in sides:
                return _EVENT
            return _MAYBE  # could be int bit-ops or set algebra
        return _NON_EVENT  # arithmetic never yields an Event
    if isinstance(expr, ast.IfExp):
        branches = {_classify(expr.body), _classify(expr.orelse)}
        if branches == {_NON_EVENT}:
            return _NON_EVENT
        if _EVENT in branches:
            return _EVENT
        return _MAYBE
    if isinstance(expr, ast.Call):
        target = expr.func
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        else:
            chain = attr_chain(target)
            if chain is not None:
                name = chain[-1]
        if name is None:
            return _MAYBE
        if name in _EVENT_CTORS or name.lower() in _EVENT_FACTORIES:
            return _EVENT
        if name in _NONEVENT_CALLS:
            return _NON_EVENT
        return _MAYBE
    return _MAYBE  # names, attribute loads, subscripts: no proof either way


def _check_yield_flow(ctx: FileContext, node: ast.expr,
                      defs: dict) -> list[Finding]:
    """K403: flag ``yield name`` whose every reaching def is non-Event."""
    if not isinstance(node, ast.Yield) or not isinstance(node.value, ast.Name):
        return []
    name = node.value.id
    dlist = defs.get(name)
    if not dlist:
        return []  # parameter or closure: unknown, acquit
    verdicts = []
    for d in dlist:
        if d.expr is None or d.aug:
            return []  # loop target / unpack / augmented: unknown
        verdicts.append((d, _classify(d.expr)))
    if not all(v == _NON_EVENT for _, v in verdicts):
        return []
    witness = tuple(
        hop(d.node, f"{name!r} assigned a non-Event value")
        for d, _ in verdicts
    ) + (hop(node, f"yielded {name!r} here"),)
    return [ctx.finding(
        node, "K403",
        f"process generator yields '{name}', which is never an Event "
        f"on any path", _HINT_FLOW).with_witness(cap_hops(witness))]


def _check_discarded_spawns(ctx: FileContext,
                            fn: ast.FunctionDef) -> list[Finding]:
    """K404: a bare ``env.process(...)`` statement discards the handle."""
    out: list[Finding] = []
    for node in walk_own(fn.body):
        if not (isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)):
            continue
        chain = attr_chain(node.value.func)
        if chain is None or chain[-1] != "process":
            continue
        if "env" not in chain[:-1] and chain[0] != "env":
            continue
        dotted = ".".join(chain)
        witness = (hop(node, f"spawned via {dotted}(...), handle dropped"),)
        out.append(ctx.finding(
            node, "K404",
            f"spawned process '{dotted}(...)' is neither awaited nor "
            f"daemon-tagged", _HINT_SPAWN).with_witness(witness))
    return out


def _unreachable_yields(fn: ast.FunctionDef) -> set[ast.expr]:
    """Yields in the ``return``-then-``yield`` empty-generator idiom.

    A bare ``yield`` directly after a ``return`` in the same statement
    block never runs — it only turns the function into a generator (the
    standard way to write a do-nothing lifecycle hook) and is exempt
    from K402.
    """
    out: set[ast.expr] = set()
    for node in ast.walk(fn):
        for block in ("body", "orelse", "finalbody"):
            stmts = getattr(node, block, None)
            if not isinstance(stmts, list):
                continue
            for prev, cur in zip(stmts, stmts[1:]):
                if (isinstance(prev, ast.Return)
                        and isinstance(cur, ast.Expr)
                        and isinstance(cur.value, ast.Yield)
                        and cur.value.value is None):
                    out.add(cur.value)
    return out


def _check_blocking(ctx: FileContext, fn: ast.FunctionDef) -> list[Finding]:
    out: list[Finding] = []
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested defs are linted on their own merits
        stack.extend(ast.iter_child_nodes(node))
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name):
            if node.func.id in _BLOCKING_BUILTINS:
                out.append(ctx.finding(
                    node, "K401",
                    f"blocking call '{node.func.id}(...)' inside the "
                    f"process generator '{fn.name}'", _HINT_IO))
            continue
        name = resolved_name(ctx, node.func)
        if name is None:
            continue
        if name in _BLOCKING_EXACT or name.startswith(_BLOCKING_PREFIXES):
            out.append(ctx.finding(
                node, "K401",
                f"blocking call '{name}(...)' inside the process "
                f"generator '{fn.name}'", _HINT_IO))
    return out


def _check_yield(ctx: FileContext, node: ast.expr) -> list[Finding]:
    if isinstance(node, ast.YieldFrom):
        return []  # delegation: the inner generator is checked itself
    assert isinstance(node, ast.Yield)
    value = node.value
    if value is None:
        return [ctx.finding(node, "K402",
                            "bare 'yield' in a process generator",
                            _HINT_YIELD)]
    if isinstance(value, ast.Constant) or isinstance(
            value, (ast.List, ast.Tuple, ast.Dict, ast.Set,
                    ast.ListComp, ast.DictComp, ast.SetComp,
                    ast.GeneratorExp, ast.JoinedStr)):
        return [ctx.finding(node, "K402",
                            "process generator yields a literal, not an "
                            "Event", _HINT_YIELD)]
    return []
