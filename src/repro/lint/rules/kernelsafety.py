"""K — kernel-safety rules.

Generator functions inside the simulation packages may run as kernel
processes: their ``yield`` targets must be kernel :class:`Event` objects
and their bodies must not block on real-world I/O — a ``print`` or
``open`` inside a process body runs once per simulated event, couples
simulated behaviour to the host filesystem/tty, and (for writes) breaks
run-to-run determinism of any artifact diffing.

Decorated generators (``@contextmanager``, ``@pytest.fixture``,
``@property``) are not kernel processes and are exempt.
"""

from __future__ import annotations

import ast

from repro.lint.config import in_scope
from repro.lint.findings import Finding
from repro.lint.rules.base import (
    FileContext,
    decorator_names,
    iter_function_defs,
    own_yields,
    resolved_name,
)

_HINT_IO = ("simulation processes must not touch real I/O; report via "
            "env.tracer / env.metrics or return data to the caller")
_HINT_YIELD = ("kernel processes may only yield Event objects (timeouts, "
               "transfers, conditions); a literal here would crash the "
               "scheduler at runtime")

_EXEMPT_DECORATORS = {"contextmanager", "asynccontextmanager", "fixture",
                      "property", "cached_property"}

#: Builtins that block or leak outside the simulation.
_BLOCKING_BUILTINS = {"open", "print", "input", "breakpoint", "exec", "eval"}

#: Resolved dotted prefixes that block (any attribute below them).
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "shutil.")
_BLOCKING_EXACT = {"os.system", "os.popen", "os.remove", "os.unlink",
                   "time.sleep", "sys.stdout.write", "sys.stderr.write"}


def check(ctx: FileContext) -> list[Finding]:
    if not in_scope(ctx.module, ctx.config.kernel_modules):
        return []
    out: list[Finding] = []
    for fn in iter_function_defs(ctx.tree):
        yields = own_yields(fn)
        if not yields:
            continue
        if decorator_names(fn) & _EXEMPT_DECORATORS:
            continue
        unreachable = _unreachable_yields(fn)
        out.extend(_check_blocking(ctx, fn))
        for y in yields:
            if y in unreachable:
                continue
            out.extend(_check_yield(ctx, y))
    return out


def _unreachable_yields(fn: ast.FunctionDef) -> set[ast.expr]:
    """Yields in the ``return``-then-``yield`` empty-generator idiom.

    A bare ``yield`` directly after a ``return`` in the same statement
    block never runs — it only turns the function into a generator (the
    standard way to write a do-nothing lifecycle hook) and is exempt
    from K402.
    """
    out: set[ast.expr] = set()
    for node in ast.walk(fn):
        for block in ("body", "orelse", "finalbody"):
            stmts = getattr(node, block, None)
            if not isinstance(stmts, list):
                continue
            for prev, cur in zip(stmts, stmts[1:]):
                if (isinstance(prev, ast.Return)
                        and isinstance(cur, ast.Expr)
                        and isinstance(cur.value, ast.Yield)
                        and cur.value.value is None):
                    out.add(cur.value)
    return out


def _check_blocking(ctx: FileContext, fn: ast.FunctionDef) -> list[Finding]:
    out: list[Finding] = []
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested defs are linted on their own merits
        stack.extend(ast.iter_child_nodes(node))
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name):
            if node.func.id in _BLOCKING_BUILTINS:
                out.append(ctx.finding(
                    node, "K401",
                    f"blocking call '{node.func.id}(...)' inside the "
                    f"process generator '{fn.name}'", _HINT_IO))
            continue
        name = resolved_name(ctx, node.func)
        if name is None:
            continue
        if name in _BLOCKING_EXACT or name.startswith(_BLOCKING_PREFIXES):
            out.append(ctx.finding(
                node, "K401",
                f"blocking call '{name}(...)' inside the process "
                f"generator '{fn.name}'", _HINT_IO))
    return out


def _check_yield(ctx: FileContext, node: ast.expr) -> list[Finding]:
    if isinstance(node, ast.YieldFrom):
        return []  # delegation: the inner generator is checked itself
    assert isinstance(node, ast.Yield)
    value = node.value
    if value is None:
        return [ctx.finding(node, "K402",
                            "bare 'yield' in a process generator",
                            _HINT_YIELD)]
    if isinstance(value, ast.Constant) or isinstance(
            value, (ast.List, ast.Tuple, ast.Dict, ast.Set,
                    ast.ListComp, ast.DictComp, ast.SetComp,
                    ast.GeneratorExp, ast.JoinedStr)):
        return [ctx.finding(node, "K402",
                            "process generator yields a literal, not an "
                            "Event", _HINT_YIELD)]
    return []
