"""Argument handling for ``repro lint`` (and ``python -m repro.lint``)."""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.lint.engine import lint_paths, render_json, render_text

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the deterministic JSON report instead of text",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RULE",
        help="restrict to a rule id (C301) or family letter (D); "
             "repeatable",
    )


def run_lint(args: argparse.Namespace) -> int:
    result = lint_paths(args.paths, rules=args.rule)
    print(render_json(result) if args.json else render_text(result))
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="simlint: static invariant checks for the simulation "
                    "stack (determinism, exactness, cause tags, kernel "
                    "safety, layering)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
