"""Argument handling for ``repro lint`` (and ``python -m repro.lint``)."""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.lint.baseline import check_baseline, write_baseline
from repro.lint.engine import lint_paths, render_json, render_text

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the deterministic JSON report instead of text",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RULE",
        help="restrict to a rule id (C301) or family letter (D); "
             "repeatable",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="compare the suppression budget against this committed "
             "baseline; any drift (new debt OR stale credit) fails",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write the current suppression budget as the new baseline "
             "and exit (does not fail on findings)",
    )


def run_lint(args: argparse.Namespace) -> int:
    result = lint_paths(args.paths, rules=args.rule)
    if args.write_baseline:
        write_baseline(result, args.write_baseline)
        print(f"baseline written: {args.write_baseline} "
              f"({len(result.suppressions)} pragma(s))")
        return 0
    print(render_json(result) if args.json else render_text(result))
    exit_code = result.exit_code
    if args.baseline:
        drift = check_baseline(result, args.baseline)
        for msg in drift:
            print(f"baseline: {msg}", file=sys.stderr)
        if drift:
            exit_code = max(exit_code, 1)
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="simlint: static invariant checks for the simulation "
                    "stack (determinism, float-taint exactness, cause "
                    "tags, kernel safety, probe purity, layering)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
