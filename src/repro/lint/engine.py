"""simlint engine: walk files, run rule families, apply suppressions.

The output is deterministic by construction: files are visited in
sorted order, findings are sorted by location, and the JSON rendering
uses sorted keys — two runs over the same tree produce byte-identical
reports (a property the test suite asserts).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.findings import Finding
from repro.lint.pragmas import FilePragmas, parse_pragmas
from repro.lint.rules import ALL_RULES
from repro.lint.rules.base import build_context

__all__ = ["LintResult", "lint_paths", "render_json", "render_text"]


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    #: Suppression budget: every ``ignore[...]`` pragma seen, used or not.
    suppressions: list[dict] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts_by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))


def iter_source_files(paths: Sequence[str]) -> list[Path]:
    files: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.update(
                f for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
                and not any(part.startswith(".") for part in f.parts)
            )
        elif p.suffix == ".py":
            files.add(p)
    return sorted(files)


def module_name_for(path: Path) -> str:
    """Dotted module identity inferred from the package structure.

    Walk up while ``__init__.py`` markers continue: ``src/repro/core/
    hybrid.py`` -> ``repro.core.hybrid``.  Files outside any package keep
    their stem (fixtures override identity via ``# simlint: module=``).
    """
    path = path.resolve()
    parts: list[str] = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _display_path(path: Path) -> str:
    try:
        rel = path.resolve().relative_to(Path.cwd())
    except ValueError:
        rel = path
    return rel.as_posix()


def lint_file(path: Path, config: LintConfig = DEFAULT_CONFIG,
              rules: Optional[Iterable[str]] = None) -> LintResult:
    result = LintResult(files_checked=1)
    display = _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        result.findings.append(Finding(
            path=display, line=1, col=1, rule="E000",
            message=f"cannot read file: {exc}"))
        return result
    pragmas = parse_pragmas(source)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        result.findings.append(Finding(
            path=display, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            rule="E000", message=f"syntax error: {exc.msg}"))
        return result
    module = pragmas.module_override or module_name_for(path)
    ctx = build_context(display, module, tree, config, pragmas)
    raw: list[Finding] = []
    for family, checker in ALL_RULES.items():
        if rules is not None and not _family_selected(family, rules):
            continue
        raw.extend(checker(ctx))
    if rules is not None:
        raw = [f for f in raw if _rule_selected(f.rule, rules)]
    _apply_suppressions(result, raw, pragmas, display)
    return result


def _family_selected(family: str, rules: Iterable[str]) -> bool:
    return any(r.upper().startswith(family) for r in rules)


def _rule_selected(rule: str, rules: Iterable[str]) -> bool:
    return any(rule == r.upper() or rule.startswith(r.upper())
               for r in rules)


def _apply_suppressions(result: LintResult, raw: list[Finding],
                        pragmas: FilePragmas, display: str) -> None:
    for f in raw:
        sup = pragmas.suppression_for(f.line, f.rule)
        if sup is not None:
            sup.used = True
            result.suppressed.append(Finding(
                path=f.path, line=f.line, col=f.col, rule=f.rule,
                message=f.message, hint=f.hint, suppressed=True))
        else:
            result.findings.append(f)
    for sup in pragmas.suppressions.values():
        entry = sup.as_dict()
        entry["path"] = display
        result.suppressions.append(entry)


def lint_paths(paths: Sequence[str], config: LintConfig = DEFAULT_CONFIG,
               rules: Optional[Iterable[str]] = None) -> LintResult:
    """Lint every ``.py`` file under ``paths``; the public entry point."""
    rules = list(rules) if rules else None
    total = LintResult()
    for path in iter_source_files(paths):
        one = lint_file(path, config, rules)
        total.findings.extend(one.findings)
        total.suppressed.extend(one.suppressed)
        total.suppressions.extend(one.suppressions)
        total.files_checked += one.files_checked
    total.findings.sort()
    total.suppressed.sort()
    total.suppressions.sort(key=lambda s: (s["path"], s["line"]))
    return total


def render_text(result: LintResult) -> str:
    lines = [f.render() for f in result.findings]
    counts = result.counts_by_rule()
    if counts:
        summary = ", ".join(f"{rule}: {n}" for rule, n in counts.items())
        lines.append("")
        lines.append(
            f"{len(result.findings)} finding(s) in "
            f"{result.files_checked} file(s) ({summary})"
        )
    else:
        lines.append(
            f"clean: {result.files_checked} file(s), 0 findings"
        )
    used = sum(1 for s in result.suppressions if s["used"])
    unused = len(result.suppressions) - used
    if result.suppressions:
        lines.append(
            f"suppression budget: {len(result.suppressions)} pragma(s) "
            f"({used} used, {unused} unused)"
        )
        for s in result.suppressions:
            state = "used" if s["used"] else "UNUSED"
            reason = s.get("reason", "")
            tail = f" -- {reason}" if reason else ""
            lines.append(
                f"    {s['path']}:{s['line']}: "
                f"ignore[{','.join(s['rules'])}] ({state}){tail}"
            )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": 1,
        "files_checked": result.files_checked,
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "suppressions": result.suppressions,
        "counts": result.counts_by_rule(),
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, sort_keys=True, indent=2)
