"""Float-taint abstract interpretation for the exactness proof (F rules).

The exact-scope modules do their conservation arithmetic on
:class:`fractions.Fraction`, where equality is exact by construction.
The failure mode this engine hunts is a value that was *computed in
float-land* — true division, a ``math.*``/``time.*`` return, a
non-integral float literal — flowing into that exact arithmetic, where
it silently turns a zero-residual proof into an epsilon comparison.

Every expression evaluates to a :class:`Value` in a tiny lattice:

``tainted``
    Carries a witness chain (:class:`~repro.lint.dataflow.Hop` tuple)
    from the taint origin through every assignment it travelled.
``fraction``
    Proven ``Fraction``-valued: a ``Fraction(...)`` construction, exact
    arithmetic between fractions, a ``sum`` seeded with a fraction, or a
    call whose one-hop summary proved all its returns fraction-valued.
``unknown``
    Everything else — parameters, attribute loads, foreign calls.
    Unknown is *clean*: the engine only reports what it can prove, so a
    finding is a real dataflow path, never a shrug.

Taint rules (the interesting cases):

* A float literal is an origin only when **non-integral** — ``0.0`` and
  ``1e6`` denote exactly the numbers they look like, while ``0.1``'s
  binary value already differs from its decimal spelling.
* True division is an origin **unless** it is exact by type: one operand
  proven ``Fraction`` and neither operand tainted
  (``Fraction / Fraction`` and ``Fraction / int`` stay exact;
  ``float / float`` does not).
* ``math.*`` and ``time.*`` returns are always origins.
* ``float(x)`` is a *coercion*, not an origin: it propagates ``x``'s
  taint but adds none (converting an exact binary float changes its
  type, not its value).  This is what lets artifact parsing
  (``Fraction(float(nbytes))``) pass without a pragma.

Assignments extend the witness chain; the per-name state is the merge
over all reaching defs (any tainted def taints the name, all-fraction
defs keep it fraction).  Two evaluation passes over the collected defs
reach the loop-carried fixpoint this lattice needs.

Cross-function flow is **one hop**: module-local helpers get a summary
(evaluated with unknown parameters), so a helper returning
``sum(..., Fraction(0))`` is fraction-valued at its call sites and one
returning ``x / 1e6``-style arithmetic carries its taint to them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.lint.dataflow import (
    Def,
    Hop,
    attr_chain,
    cap_hops,
    collect_defs,
    hop,
    local_functions,
    walk_own,
)
from repro.lint.rules.base import FileContext, resolved_name

__all__ = ["TaintAnalysis", "Value", "UNKNOWN"]

#: Stdlib modules whose call returns are float-tainted by definition.
_TAINT_MODULES = ("math", "time")

#: Builtins that propagate their argument's classification unchanged
#: (coercions and order statistics: no new inexactness introduced).
_PROPAGATE_CALLS = {"float", "abs", "min", "max", "round"}

#: Builtins whose result is never fraction-valued and never tainted.
_CLEAN_CALLS = {"int", "len", "str", "bool", "repr", "sorted", "list",
                "dict", "tuple", "set", "frozenset", "range", "enumerate",
                "zip", "isinstance", "getattr", "hash", "id", "format"}


@dataclass(frozen=True)
class Value:
    """Abstract value: optional taint witness + fraction proof."""

    taint: Optional[tuple[Hop, ...]] = None
    fraction: bool = False

    @property
    def tainted(self) -> bool:
        return self.taint is not None


UNKNOWN = Value()
FRACTION = Value(fraction=True)


def _integral(value: float) -> bool:
    """True when a float literal denotes exactly an integer (``0.0``, ``1e6``).

    Such literals are exact by construction and carry no taint; ``nan``
    and ``inf`` spellings are non-integral (and would be findings anyway
    if they ever reached exact arithmetic).
    """
    try:
        return value == int(value)
    except (OverflowError, ValueError):
        return False


def _merge(values: list[Value]) -> Value:
    """Join over reaching defs: any taint wins, fraction needs unanimity."""
    if not values:
        return UNKNOWN
    taint = next((v.taint for v in values if v.taint is not None), None)
    fraction = all(v.fraction for v in values)
    return Value(taint=taint, fraction=fraction and taint is None)


@dataclass
class TaintAnalysis:
    """Per-file float-taint engine with one-hop call summaries."""

    ctx: FileContext
    summaries: dict[str, Value] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # One-hop summaries, computed in source order: a helper defined
        # earlier is visible to later bodies (the dominant direction in
        # this tree); deeper recursion is deliberately out of scope.
        for name, fn in sorted(
            local_functions(self.ctx.tree).items(),
            key=lambda kv: kv[1].lineno,
        ):
            self.summaries[name] = self._summarise(fn)

    # -- public surface ----------------------------------------------------

    def function_env(self, body: list[ast.stmt]) -> dict[str, Value]:
        """Merged per-name state for one function body (fixpoint)."""
        defs = collect_defs(body)
        env: dict[str, Value] = {}
        # Two passes: the first sees forward flows, the second closes
        # loop-carried ones (x tainted at the bottom of a loop feeding
        # its own next iteration).  The lattice is 2-level, so two
        # passes reach the fixpoint.
        for _pass in (0, 1):
            for name, dlist in defs.items():
                env[name] = self._merge_defs(name, dlist, env)
        return env

    def evaluate(self, expr: ast.expr, env: dict[str, Value]) -> Value:
        """Classify ``expr`` under ``env``."""
        return self._eval(expr, env, depth=0)

    # -- internals ---------------------------------------------------------

    def _merge_defs(self, name: str, dlist: list[Def],
                    env: dict[str, Value]) -> Value:
        values: list[Value] = []
        for d in dlist:
            if d.expr is None:
                values.append(UNKNOWN)
                continue
            v = self._eval(d.expr, env, depth=0)
            if d.aug:
                # x += rhs: effective value is old-x <op> rhs.
                v = _merge([env.get(name, UNKNOWN), v]) if not v.tainted \
                    else v
            if v.tainted:
                assert v.taint is not None
                v = Value(taint=cap_hops(
                    v.taint + (hop(d.node, f"assigned to {name!r}"),)
                ))
            values.append(v)
        return _merge(values)

    def _summarise(self, fn: ast.FunctionDef) -> Value:
        env = self.function_env(fn.body)
        returns: list[Value] = []
        for node in walk_own(fn.body):
            if isinstance(node, ast.Return) and node.value is not None:
                v = self._eval(node.value, env, depth=0)
                if v.tainted:
                    assert v.taint is not None
                    v = Value(taint=cap_hops(v.taint + (
                        hop(node, f"returned from {fn.name!r}"),
                    )))
                returns.append(v)
        return _merge(returns) if returns else UNKNOWN

    def is_fraction_ctor(self, func: ast.expr) -> bool:
        if isinstance(func, ast.Name) and func.id == "Fraction":
            return True
        name = resolved_name(self.ctx, func)
        return name in ("fractions.Fraction", "Fraction")

    def _taint_module_call(self, func: ast.expr) -> Optional[str]:
        """Dotted name when ``func`` is a ``math.*``/``time.*`` callable."""
        name = resolved_name(self.ctx, func)
        if name is None:
            chain = attr_chain(func)
            if chain is not None and chain[0] in _TAINT_MODULES:
                name = ".".join(chain)
        if name is not None and name.split(".")[0] in _TAINT_MODULES:
            return name
        return None

    def _eval(self, expr: ast.expr, env: dict[str, Value],
              depth: int) -> Value:
        if depth > 40:  # pathological nesting: give up cleanly
            return UNKNOWN
        d = depth + 1
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, float) and not _integral(expr.value):
                return Value(taint=(
                    hop(expr, f"float literal {expr.value!r}"),
                ))
            return UNKNOWN
        if isinstance(expr, ast.Name):
            return env.get(expr.id, UNKNOWN)
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand, env, d)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, env, d)
        if isinstance(expr, ast.IfExp):
            return _merge([self._eval(expr.body, env, d),
                           self._eval(expr.orelse, env, d)])
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env, d)
        if isinstance(expr, (ast.Compare, ast.BoolOp)):
            return UNKNOWN
        if isinstance(expr, ast.NamedExpr):
            return self._eval(expr.value, env, d)
        # Attribute/Subscript loads, displays, comprehensions: unknown.
        return UNKNOWN

    def _eval_binop(self, expr: ast.BinOp, env: dict[str, Value],
                    d: int) -> Value:
        lv = self._eval(expr.left, env, d)
        rv = self._eval(expr.right, env, d)
        carried = lv.taint if lv.tainted else rv.taint
        if isinstance(expr.op, ast.Div):
            exact = ((lv.fraction or rv.fraction)
                     and not lv.tainted and not rv.tainted)
            if exact:
                return FRACTION
            hops: tuple[Hop, ...] = carried if carried is not None else ()
            return Value(taint=cap_hops(
                hops + (hop(expr, "true division"),)
            ))
        if carried is not None:
            return Value(taint=carried)
        if lv.fraction or rv.fraction:
            # Fraction <op> {Fraction, int, unknown-int}: stays exact for
            # every operator the exact modules use; an unknown operand
            # that is secretly a float would taint at ITS origin instead.
            return FRACTION
        return UNKNOWN

    def _eval_call(self, expr: ast.Call, env: dict[str, Value],
                   d: int) -> Value:
        func = expr.func
        if self.is_fraction_ctor(func):
            return FRACTION
        mod_call = self._taint_module_call(func)
        if mod_call is not None:
            return Value(taint=(hop(expr, f"call to {mod_call}"),))
        if isinstance(func, ast.Name):
            if func.id in _PROPAGATE_CALLS:
                args = [self._eval(a, env, d) for a in expr.args]
                taint = next((a.taint for a in args if a.taint is not None),
                             None)
                if taint is not None:
                    return Value(taint=taint)
                if func.id in ("abs", "min", "max") and args \
                        and all(a.fraction for a in args):
                    return FRACTION
                return UNKNOWN
            if func.id in _CLEAN_CALLS:
                return UNKNOWN
            if func.id == "sum":
                start = (self._eval(expr.args[1], env, d)
                         if len(expr.args) > 1 else UNKNOWN)
                head = (self._eval(expr.args[0], env, d)
                        if expr.args else UNKNOWN)
                taint = head.taint or start.taint
                if taint is not None:
                    return Value(taint=taint)
                return FRACTION if start.fraction else UNKNOWN
            summary = self.summaries.get(func.id)
            if summary is not None:
                if summary.tainted:
                    assert summary.taint is not None
                    return Value(taint=cap_hops(summary.taint + (
                        hop(expr, f"via call to {func.id}(...)"),
                    )))
                return summary
        chain = attr_chain(func)
        if chain is not None and len(chain) == 2 and chain[0] == "self":
            summary = self.summaries.get(chain[1])
            if summary is not None:
                if summary.tainted:
                    assert summary.taint is not None
                    return Value(taint=cap_hops(summary.taint + (
                        hop(expr, f"via call to self.{chain[1]}(...)"),
                    )))
                return summary
        return UNKNOWN
