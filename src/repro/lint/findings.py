"""Finding: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One simlint diagnostic.

    Orders by location first so rendered output is stable regardless of
    the order rules ran in.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    suppressed: bool = field(default=False, compare=False)

    def as_dict(self) -> dict:
        out = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }
        if self.suppressed:
            out["suppressed"] = True
        return out

    def render(self) -> str:
        sup = " (suppressed)" if self.suppressed else ""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{sup}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text
