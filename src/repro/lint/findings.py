"""Finding: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.lint.dataflow import Hop


@dataclass(frozen=True, order=True)
class Finding:
    """One simlint diagnostic.

    Orders by location first so rendered output is stable regardless of
    the order rules ran in.  Dataflow-backed findings (the F/P families
    and the K upgrade) carry a ``witness`` — the def → flow → sink hop
    chain that proves the finding — which renders as indented steps in
    text and a list of ``{line, col, note}`` objects in JSON.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    suppressed: bool = field(default=False, compare=False)
    witness: tuple[Hop, ...] = field(default=(), compare=False)

    def with_witness(self, witness: tuple[Hop, ...]) -> "Finding":
        return replace(self, witness=witness)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }
        if self.suppressed:
            out["suppressed"] = True
        if self.witness:
            out["witness"] = [h.as_dict() for h in self.witness]
        return out

    def render(self) -> str:
        sup = " (suppressed)" if self.suppressed else ""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{sup}"
        for i, h in enumerate(self.witness):
            arrow = "└─" if i == len(self.witness) - 1 else "├─"
            text += f"\n    {arrow} {self.path}:{h.line}:{h.col}: {h.note}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text
