"""Suppression-budget baseline: committed debt, checked for drift.

The lint run's suppression budget (every ``ignore[...]``/``daemon``
pragma in the tree) is aggregated into a small committed document,
``tests/lint/baseline.json``.  CI compares the budget of every run
against it, in both directions:

* **New debt fails.**  A suppression not in the baseline — or a count
  above it — means somebody silenced a rule without updating the
  committed record, so the diff that added the pragma must also carry
  the baseline change (and therefore show up in review).
* **Stale credit fails.**  A budget *below* the baseline means debt was
  paid off but the record still claims it; the baseline must shrink in
  the same commit so the ratchet only ever moves down deliberately.

Entries aggregate by ``(path, rules, reason)`` with a count, not by line
number, so pure line drift (code added above a pragma) does not churn
the file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.lint.engine import LintResult

__all__ = ["baseline_entries", "check_baseline", "render_baseline",
           "write_baseline", "load_baseline"]

SCHEMA = "repro.lint.baseline/1"

_Key = tuple[str, tuple[str, ...], str]


def baseline_entries(result: "LintResult") -> list[dict]:
    """Aggregate a run's suppression budget into baseline entries."""
    counts: dict[_Key, int] = {}
    for s in result.suppressions:
        key = (s["path"], tuple(s["rules"]), s.get("reason", ""))
        counts[key] = counts.get(key, 0) + 1
    return [
        {"path": path, "rules": list(rules), "reason": reason,
         "count": count}
        for (path, rules, reason), count in sorted(counts.items())
    ]


def render_baseline(result: "LintResult") -> str:
    payload = {"schema": SCHEMA, "entries": baseline_entries(result)}
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def write_baseline(result: "LintResult", path: str) -> None:
    Path(path).write_text(render_baseline(result), encoding="utf-8")


def load_baseline(path: str) -> list[dict]:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, "
            f"got {payload.get('schema')!r}")
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'entries' must be a list")
    return entries


def check_baseline(result: "LintResult", path: str) -> list[str]:
    """Drift messages comparing ``result``'s budget to the committed file.

    Empty list means the budget matches exactly.
    """
    try:
        committed = load_baseline(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        return [f"baseline unreadable: {exc}"]

    def as_map(entries: list[dict]) -> dict[_Key, int]:
        out: dict[_Key, int] = {}
        for e in entries:
            key = (e["path"], tuple(e["rules"]), e.get("reason", ""))
            out[key] = out.get(key, 0) + int(e.get("count", 1))
        return out

    have = as_map(baseline_entries(result))
    want = as_map(committed)
    msgs: list[str] = []
    for key in sorted(set(have) | set(want)):
        path_, rules, reason = key
        label = f"{path_}: ignore[{','.join(rules)}]" + (
            f" -- {reason}" if reason else "")
        h, w = have.get(key, 0), want.get(key, 0)
        if h > w:
            msgs.append(
                f"new suppression debt: {label} ({h} > baseline {w}); "
                f"fix the finding or update the baseline in this commit")
        elif h < w:
            msgs.append(
                f"suppression budget shrank: {label} ({h} < baseline "
                f"{w}); regenerate the baseline so the ratchet records it")
    return msgs
