"""simlint: an AST-based invariant linter for this reproduction.

The runtime guarantees of the simulation stack — bit-identical reruns,
Fraction-exact byte/time conservation, full causal coverage of every
byte-moving call site — are enforced dynamically by golden fixtures and
property tests.  simlint enforces the same invariants *statically*, at
lint time, so the classes of regression that would eventually trip those
tests (an unseeded RNG, a wall-clock read, float drift in exact
accounting, an untagged transfer, an upward layer import) are caught
before they ship.

Rule families (see ``docs/static-analysis.md``):

* **D — determinism**: no wall clocks, calendar time or unseeded
  randomness inside the simulation packages.
* **X — exactness**: modules declared exact (pragma or config) keep
  float literals, ``math.*`` and ``float()`` coercions out of their
  accounting arithmetic — :class:`fractions.Fraction` only.
* **C — cause-tag completeness**: every byte-moving call site passes
  ``tag=`` and ``cause=`` explicitly, so conservation can attribute it.
* **K — kernel safety**: no blocking real I/O inside simulation process
  generators; ``yield`` targets must be kernel events.
* **S — structure**: imports may not invert the layer DAG
  ``simkernel <- netsim <- storage/hypervisor/... <- core <- cluster <-
  experiments``.

Per-line suppressions (``# simlint: ignore[RULE] -- reason``) are
honoured but reported in a suppression budget rather than vanishing.
"""

from __future__ import annotations

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import LintResult, lint_paths, render_json, render_text
from repro.lint.findings import Finding

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintResult",
    "lint_paths",
    "render_json",
    "render_text",
]
