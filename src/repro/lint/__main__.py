"""``python -m repro.lint [PATHS] [--json] [--rule ...]``."""

import sys

from repro.lint.cli import main

sys.exit(main())
