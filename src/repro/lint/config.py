"""Lint configuration: which rules apply where.

The defaults encode this repository's invariants; fixture files (and
future out-of-tree users) can re-scope individual files with the
``# simlint: module=<dotted.name>`` pragma, which overrides the module
identity the scoping below is matched against.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_layers() -> dict[str, int]:
    # The layer DAG, low to high.  A module may import same-or-lower
    # layers only; packages not listed here (obs, metrics, faults, lint)
    # are cross-cutting infrastructure and unconstrained.
    return {
        "repro.simkernel": 0,
        "repro.netsim": 1,
        "repro.storage": 2,
        "repro.repository": 2,
        "repro.hypervisor": 2,
        "repro.workloads": 2,
        "repro.core": 3,
        "repro.cluster": 4,
        "repro.experiments": 5,
        "repro.cli": 6,
    }


def _default_obs_layers() -> dict[str, int]:
    # The observability sub-DAG: the diff engine consumes the other
    # analysis products (flight summaries, critical paths, profiler
    # trees) and must never be imported back by their producers — that
    # would make every artifact schema circularly depend on its own
    # differ.  Everything else under ``repro.obs`` shares the base rank
    # on purpose: analyze and causal are mutually recursive by design
    # (causal borrows the analyzer's lane maps, the analyzer embeds
    # critical paths).
    # The series recorder is listed explicitly even though the
    # ``repro.obs`` prefix already ranks it: its loaders are a
    # sanctioned *input* of the diff engine (series docs diff like any
    # other artifact), so the asymmetry — diff may import series,
    # series may never import diff — deserves a named row.
    return {
        "repro.obs": 0,
        "repro.obs.series": 0,
        "repro.obs.diff": 1,
    }


def _layer_lookup(module: str, layers: dict[str, int]) -> int | None:
    best = None
    best_len = -1
    for prefix, rank in layers.items():
        if module == prefix or module.startswith(prefix + "."):
            if len(prefix) > best_len:
                best, best_len = rank, len(prefix)
    return best


@dataclass(frozen=True)
class LintConfig:
    """Scoping knobs for the five rule families."""

    #: D rules apply to modules under these prefixes: the simulation
    #: stack proper, where any nondeterminism breaks bit-identical reruns.
    determinism_modules: tuple[str, ...] = (
        "repro.simkernel",
        "repro.netsim",
        "repro.core",
        "repro.hypervisor",
        "repro.workloads",
        "repro.obs",
        "repro.obs.series",
        # The byte-exactness harnesses themselves: suites that compare
        # runs bit-for-bit must not be a source of nondeterminism.
        "tests.differential",
        "tests.golden",
    )

    #: Sanctioned host-time islands inside the determinism scope: modules
    #: whose *job* is reading the host clock (the self-profiler).  D101/
    #: D102 (wall/calendar time) are waived here — host timing is what
    #: they measure, and it never feeds back into simulation state — but
    #: D103/D104 (randomness, hash-order iteration) still apply in full.
    #: Individual files outside these prefixes can opt in with a
    #: ``# simlint: host-time`` pragma.
    host_time_modules: tuple[str, ...] = (
        "repro.obs.prof",
    )

    #: F rules (float-taint) apply to these modules (plus any carrying a
    #: ``# simlint: exact`` pragma — now purely a scope declaration): the
    #: Fraction-exact accounting code.
    exact_modules: tuple[str, ...] = (
        "repro.obs.analyze.attribution",
        "repro.obs.causal.critical",
        "repro.obs.causal.whatif",
        "repro.obs.diff.delta",
        "repro.obs.series.conserve",
    )

    #: K rules apply to generator functions in modules under these
    #: prefixes — anything that may run as a simulation process.
    kernel_modules: tuple[str, ...] = (
        "repro.simkernel",
        "repro.netsim",
        "repro.core",
        "repro.hypervisor",
        "repro.workloads",
        "repro.storage",
        "repro.repository",
        "repro.cluster",
    )

    #: P rules (probe purity) apply to modules under these prefixes —
    #: everywhere the telemetry hooks are planted.  Same surface as the
    #: kernel scope: a probe block in any simulation package must be
    #: observe-only.
    probe_modules: tuple[str, ...] = (
        "repro.simkernel",
        "repro.netsim",
        "repro.core",
        "repro.hypervisor",
        "repro.workloads",
        "repro.storage",
        "repro.repository",
        "repro.cluster",
    )

    #: Final attribute segments identifying telemetry handles for the P
    #: rules: ``sr = self.env.series`` makes ``sr`` a probe handle, and
    #: any call rooted at a handle (or reading through one of these
    #: attributes) is sanctioned inside a probe block.
    probe_attrs: tuple[str, ...] = (
        "series",
        "tracer",
        "metrics",
        "profiler",
    )

    #: Layer ranks for the S rules (longest-prefix match).
    layers: dict[str, int] = field(default_factory=_default_layers)

    #: Sub-DAG inside the (globally unranked) obs package, for S502.
    obs_layers: dict[str, int] = field(default_factory=_default_obs_layers)

    #: Receiver-name suffixes identifying the byte-moving surfaces for
    #: the C rules: ``<receiver>.<method>(...)`` must pass the required
    #: keywords explicitly when the receiver's final attribute segment
    #: matches (exactly, or with a ``_`` prefix word, e.g.
    #: ``traffic_meter``).
    fabric_receivers: tuple[str, ...] = ("fabric",)
    repo_receivers: tuple[str, ...] = ("repo", "repository")
    meter_receivers: tuple[str, ...] = ("meter",)

    def layer_of(self, module: str) -> int | None:
        """Layer rank of ``module`` by longest prefix match, if mapped."""
        return _layer_lookup(module, self.layers)

    def obs_layer_of(self, module: str) -> int | None:
        """Rank of ``module`` in the obs sub-DAG, if it lives there."""
        return _layer_lookup(module, self.obs_layers)


DEFAULT_CONFIG = LintConfig()


def in_scope(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        module == p or module.startswith(p + ".") for p in prefixes
    )
