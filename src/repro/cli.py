"""Command-line front end.

Exposes the evaluation harness and one-off migration runs without writing
Python::

    python -m repro.cli table1
    python -m repro.cli fig1
    python -m repro.cli fig2 [--approach postcopy]
    python -m repro.cli fig3 [--quick]
    python -m repro.cli fig4 [--quick]
    python -m repro.cli fig5 [--quick] [--grid 8x8]
    python -m repro.cli single --approach our-approach --workload ior
    python -m repro.cli compare --workload asyncwr
    python -m repro.cli analyze trace.json [--json out.json] [--html out.html]
    python -m repro.cli profile [--speedscope prof.json] [--check]
    python -m repro.cli diff runA.json runB.json [--json] [--top 5]
    python -m repro.cli series fig2-series.json [--json] [--csv]
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.registry import APPROACHES
from repro.experiments.config import IOR_MAX_READ, IOR_MAX_WRITE
from repro.experiments.runner import render_table
from repro.experiments.scenarios import run_single_migration

__all__ = ["main", "build_parser"]


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    """Observability flags shared by the run-something subcommands."""
    p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write an execution trace (.json = Chrome/Perfetto trace "
             "format, .jsonl = one event per line)",
    )
    p.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write per-run counters/gauges/histograms as JSON",
    )
    p.add_argument(
        "--trace-detail", choices=["normal", "full"], default="normal",
        help="'full' additionally records high-frequency events "
             "(process resumes, control messages)",
    )
    p.add_argument(
        "--report", metavar="OUT.html", default=None,
        help="analyze the run's trace and write a self-contained HTML "
             "report (implies tracing, even without --trace)",
    )
    p.add_argument(
        "--causal", action="store_true",
        help="record causal wait edges for critical-path analysis "
             "(repro critical-path TRACE.json); implies tracing",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="self-profile the simulator host process (wall-clock per "
             "subsystem + work counters); never changes simulation output",
    )
    p.add_argument(
        "--profile-out", metavar="OUT.speedscope.json", default=None,
        help="write the host profile as a speedscope flamegraph "
             "(implies --profile)",
    )
    p.add_argument(
        "--series", action="store_true",
        help="record time-resolved telemetry (repro.obs.series); never "
             "changes simulation output",
    )
    p.add_argument(
        "--series-out", metavar="OUT.json", default=None,
        help="write the repro.series/1 time-series document "
             "(implies --series)",
    )


def _add_fault_flags(p: argparse.ArgumentParser) -> None:
    """Fault-injection flags for the migration-running subcommands."""
    p.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="inject faults from a FaultPlan JSON file (schedule + "
             "timeout/retry knobs; see repro.faults.FaultPlan)",
    )
    p.add_argument(
        "--restarts", type=int, default=0,
        help="re-issue an aborted migration up to N extra times",
    )


def _load_faults(args):
    path = getattr(args, "faults", None)
    if path is None:
        return None
    from repro.faults import FaultPlan

    return FaultPlan.from_file(path)


def _make_obs(args):
    """An Observability bundle when any export flag was given, else None."""
    trace = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    report = getattr(args, "report", None)
    causal = getattr(args, "causal", False)
    profile = (getattr(args, "profile", False)
               or getattr(args, "profile_out", None) is not None)
    series = (getattr(args, "series", False)
              or getattr(args, "series_out", None) is not None)
    if (trace is None and metrics_out is None and report is None
            and not causal and not profile and not series):
        return None
    from repro.obs import Observability

    return Observability(
        trace=trace is not None or report is not None or causal,
        metrics=metrics_out is not None,
        detail=args.trace_detail,
        causal=causal,
        profile=profile,
        series=series,
    )


def _write_obs(obs, args) -> None:
    if obs is None:
        return
    series_out = getattr(args, "series_out", None)
    obs.write(trace_path=args.trace, metrics_path=args.metrics_out,
              series_path=series_out)
    written = [p for p in (args.trace, args.metrics_out, series_out) if p]
    prof_summary = None
    if obs.profiler.enabled:
        from repro.obs.prof import render_profile_text, write_speedscope

        prof_summary = obs.profiler.summary()
        print(render_profile_text(prof_summary), file=sys.stderr)
        profile_out = getattr(args, "profile_out", None)
        if profile_out is not None:
            write_speedscope(prof_summary, profile_out,
                             name=f"repro {args.command}")
            written.append(profile_out)
    series_summary = obs.series.summary() if obs.series.enabled else None
    if series_summary is not None and series_out is None:
        from repro.obs.series import render_sparklines

        print(render_sparklines(series_summary), file=sys.stderr)
    report = getattr(args, "report", None)
    if report is not None:
        import pathlib

        from repro.obs.analyze import analyze_tracer, render_html

        summary = analyze_tracer(obs.tracer)
        path = pathlib.Path(report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_html(summary, profile=prof_summary,
                                    series=series_summary))
        written.append(report)
        if not summary["conservation_ok"]:
            print("warning: byte-attribution conservation check failed",
                  file=sys.stderr)
    for path in written:
        print(f"wrote {path}", file=sys.stderr)


def _parse_grid(text: str) -> tuple[int, int]:
    try:
        a, b = text.lower().split("x")
        return int(a), int(b)
    except Exception as exc:  # noqa: BLE001 - argparse boundary
        raise argparse.ArgumentTypeError(
            f"grid must look like '4x4', got {text!r}"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Hybrid Local Storage Transfer Scheme for "
            "Live Migration of I/O Intensive Workloads' (HPDC'12)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (approach summary)")

    fig1 = sub.add_parser("fig1", help="render the architecture inventory")
    fig1.add_argument("--nodes", type=int, default=8)

    fig2 = sub.add_parser("fig2", help="run + render one migration's phase timeline")
    fig2.add_argument("--approach", choices=sorted(APPROACHES),
                      default="our-approach")
    _add_obs_flags(fig2)

    for fig in ("fig3", "fig4", "fig5"):
        p = sub.add_parser(fig, help=f"regenerate {fig} of the paper")
        p.add_argument("--quick", action="store_true",
                       help="reduced geometry for a fast run")
        if fig == "fig5":
            p.add_argument("--grid", type=_parse_grid, default=(4, 4),
                           help="CM1 rank grid, e.g. 8x8 (default 4x4)")
        _add_obs_flags(p)

    single = sub.add_parser("single", help="one migration under one workload")
    single.add_argument("--approach", choices=sorted(APPROACHES),
                        default="our-approach")
    single.add_argument("--workload", choices=["ior", "asyncwr"], default="ior")
    single.add_argument("--warmup", type=float, default=10.0,
                        help="seconds before the migration request")
    single.add_argument("--seed", type=int, default=0)
    _add_obs_flags(single)
    _add_fault_flags(single)

    compare = sub.add_parser(
        "compare", help="run all five approaches on one workload"
    )
    compare.add_argument("--workload", choices=["ior", "asyncwr"], default="ior")
    compare.add_argument("--warmup", type=float, default=10.0)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--diff", action="store_true",
                         help="after the table, attribute each approach's "
                              "delta against our-approach (bytes by cause, "
                              "critical path, migration wall)")
    compare.add_argument("--top", type=int, default=5,
                         help="contributors per dimension in --diff tables")
    _add_obs_flags(compare)
    _add_fault_flags(compare)

    analyze = sub.add_parser(
        "analyze",
        help="derive per-cause attribution, phase timelines and the chunk "
             "heatmap from a recorded trace",
    )
    analyze.add_argument("trace_file", metavar="TRACE.json",
                         help="trace written by --trace (.json or .jsonl)")
    analyze.add_argument("--json", metavar="OUT.json", default=None,
                         help="write the deterministic JSON summary")
    analyze.add_argument("--html", metavar="OUT.html", default=None,
                         help="write the self-contained HTML report")
    analyze.add_argument("--check", action="store_true",
                         help="exit non-zero unless every run's byte "
                              "attribution conserves exactly")

    cpath = sub.add_parser(
        "critical-path",
        help="explain a migration's wall time: critical-path decomposition "
             "by resource class from a trace recorded with --causal",
    )
    cpath.add_argument("trace_file", metavar="TRACE.json",
                       help="trace written by a run with --causal --trace")
    cpath.add_argument("--json", action="store_true",
                       help="print the deterministic JSON instead of text")
    cpath.add_argument("--what-if", metavar="RES=FACTOR", action="append",
                       default=[], dest="what_if",
                       help="bounded speedup with a resource class sped up, "
                            "e.g. nic=2, net.memory=4, stall.timeout=inf "
                            "(repeatable)")

    profile = sub.add_parser(
        "profile",
        help="self-profile the simulator host process: run fig2 under the "
             "deterministic profiler and print the per-subsystem wall-clock "
             "tree + work counters (see docs/profiling.md)",
    )
    profile.add_argument("--approach", choices=sorted(APPROACHES),
                         default="our-approach")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--alloc", action="store_true",
                         help="also attribute heap allocations via "
                              "tracemalloc (slower)")
    profile.add_argument("--speedscope", metavar="OUT.json", default=None,
                         help="write a speedscope.app-loadable flamegraph")
    profile.add_argument("--collapsed", metavar="OUT.txt", default=None,
                         help="write Brendan-Gregg collapsed stacks "
                              "(flamegraph.pl input)")
    profile.add_argument("--json", metavar="OUT.json", default=None,
                         help="write the raw profile summary as JSON")
    profile.add_argument("--report", metavar="OUT.html", default=None,
                         help="write the flight report HTML with the "
                              "profiler panel embedded")
    profile.add_argument("--check", action="store_true",
                         help="exit non-zero unless exclusive times sum to "
                              "total wall within 1%%")

    diff = sub.add_parser(
        "diff",
        help="attribute the delta between two runs: consumes two artifacts "
             "of the same kind (analyze/critical-path/profile JSON, or "
             "BENCH trajectory entries) and decomposes every changed total "
             "into exactly-conserving per-key contributions",
    )
    diff.add_argument("artifact_a", metavar="A",
                      help="first artifact (the baseline)")
    diff.add_argument("artifact_b", metavar="B",
                      help="second artifact (the candidate)")
    diff.add_argument("--json", metavar="OUT.json", nargs="?", const="-",
                      default=None,
                      help="emit the deterministic JSON document instead of "
                           "the table (to stdout, or to OUT.json)")
    diff.add_argument("--report", metavar="OUT.html", default=None,
                      help="also write a side-by-side HTML delta panel")
    diff.add_argument("--top", type=int, default=10,
                      help="ranked contributors shown per dimension "
                           "(default 10)")
    diff.add_argument("--entry-a", type=int, default=None,
                      help="entry index when A is a BENCH trajectory file "
                           "(negative counts from the end)")
    diff.add_argument("--entry-b", type=int, default=None,
                      help="entry index when B is a BENCH trajectory file")

    series = sub.add_parser(
        "series",
        help="render time-resolved telemetry (sparklines, JSON, CSV) from "
             "a repro.series/1 document or derive it from a trace's "
             "counter events",
    )
    series.add_argument("input", metavar="SERIES-or-TRACE.json",
                        help="document written by --series-out, or a trace "
                             "written by --trace (.json or .jsonl)")
    series.add_argument("--json", metavar="OUT.json", nargs="?", const="-",
                        default=None,
                        help="emit the repro.series/1 document instead of "
                             "sparklines (to stdout, or to OUT.json)")
    series.add_argument("--csv", metavar="OUT.csv", nargs="?", const="-",
                        default=None,
                        help="emit long-form CSV (run,signal,kind,unit,t,"
                             "value) to stdout or OUT.csv")
    series.add_argument("--signal", metavar="GLOB", action="append",
                        default=[], dest="signals",
                        help="only signals matching this glob "
                             "(repeatable, e.g. --signal 'net.*')")
    series.add_argument("--width", type=int, default=60,
                        help="sparkline width in columns (default 60)")

    lint = sub.add_parser(
        "lint",
        help="simlint: static invariant checks (determinism, exactness, "
             "cause tags, kernel safety, layering); see "
             "docs/static-analysis.md",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)

    return parser


def _cmd_profile(args) -> int:
    import json
    import pathlib

    from repro.experiments.fig2 import run_fig2
    from repro.obs import Observability, Profiler
    from repro.obs.analyze import analyze_tracer, render_html
    from repro.obs.prof import (
        render_profile_text,
        write_collapsed,
        write_speedscope,
    )

    obs = Observability(trace=True, metrics=False,
                        profile=Profiler(alloc=args.alloc))
    prof = obs.profiler
    with prof.scope("run.fig2"):
        run_fig2(args.approach, seed=args.seed, obs=obs)
    with prof.scope("obs.analyze"):
        summary = analyze_tracer(obs.tracer)
    prof_summary = prof.summary()
    print(f"== repro profile: fig2 ({args.approach}, seed {args.seed})")
    print(render_profile_text(prof_summary))
    written = []
    if args.speedscope:
        write_speedscope(prof_summary, args.speedscope,
                         name=f"repro profile fig2 ({args.approach})")
        written.append(args.speedscope)
    if args.collapsed:
        write_collapsed(prof_summary, args.collapsed)
        written.append(args.collapsed)
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(prof_summary, sort_keys=True, indent=1))
        written.append(args.json)
    if args.report:
        path = pathlib.Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_html(summary, profile=prof_summary))
        written.append(args.report)
    for p in written:
        print(f"wrote {p}", file=sys.stderr)
    if args.check and not prof_summary["conservation"]["ok"]:
        print("profile conservation check FAILED", file=sys.stderr)
        return 1
    return 0


def _load_trace_or_exit(path: str):
    """Events from a trace file, or ``None`` after printing a one-line
    error (unreadable file / bad JSON must never escape as a traceback)."""
    import json

    from repro.obs.analyze import load_trace

    try:
        return load_trace(path)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid trace JSON: {exc}",
              file=sys.stderr)
    return None


def _cmd_analyze(args) -> int:
    from repro.obs.analyze import (
        analyze_events,
        render_html,
        render_text,
        write_summary_json,
    )

    events = _load_trace_or_exit(args.trace_file)
    if events is None:
        return 2
    summary = analyze_events(events)
    if not summary["runs"]:
        print(f"error: no recorded runs in {args.trace_file} — record the "
              "trace with --trace (add --causal for critical-path sections, "
              "--profile for host profiling)", file=sys.stderr)
        return 2
    print(render_text(summary))
    if args.json is not None:
        write_summary_json(summary, args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.html is not None:
        import pathlib

        path = pathlib.Path(args.html)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_html(summary))
        print(f"wrote {args.html}", file=sys.stderr)
    if args.check and not summary["conservation_ok"]:
        print("conservation check FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_critical_path(args) -> int:
    import json

    from repro.obs.causal import critical_path_summary, parse_what_if

    try:
        specs = [parse_what_if(s) for s in args.what_if]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    events = _load_trace_or_exit(args.trace_file)
    if events is None:
        return 2
    out = critical_path_summary(events, specs)
    all_attempts = [a for r in out["runs"] for a in r["attempts"]]
    if not all_attempts:
        print(f"error: no causal records in {args.trace_file} — re-run the "
              "experiment with --causal to record wait edges",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(out, sort_keys=True, separators=(",", ":")))
    else:
        print(_render_critical_text(out))
    if not out["conservation_ok"]:
        print("critical-path conservation check FAILED", file=sys.stderr)
        return 1
    return 0


def _render_critical_text(out: dict) -> str:
    lines = []
    for run in out["runs"]:
        if not run["attempts"]:
            continue
        lines.append(f"=== {run['label']} ===")
        for att in run["attempts"]:
            status = " [aborted]" if att["aborted"] else ""
            lines.append(
                f"migration {att['vm']} attempt {att['attempt']}{status}: "
                f"{att['wall_s']:.3f} s "
                f"({att['start_s']:.3f} -> {att['end_s']:.3f})"
            )
            cons = att["conservation"]
            lines.append(
                "  conservation: "
                + ("exact" if cons["exact"]
                   else f"RESIDUAL {cons['residual_s']:g} s")
            )
            lines.append("  critical path by resource:")
            lines.extend(
                f"    {row['resource']:<22s}"
                f"{row['seconds']:>10.3f} s  "
                f"{100 * row['share']:5.1f}%"
                for row in att["by_resource"]
            )
        lines.extend(
            f"  what-if {wi['resource']}x{wi['factor']:g} "
            f"(attempt {wi['attempt']}): wall {wi['wall_s']:.3f} -> "
            f">= {wi['new_wall_s']:.3f} s "
            f"(speedup <= {wi['speedup_bound']:.2f}x)"
            for wi in run["what_if"]
        )
        lines.append("")
    return "\n".join(lines).rstrip()


def _cmd_diff(args) -> int:
    import pathlib

    from repro.obs.diff import (
        DiffError,
        diff_files,
        diff_json,
        render_diff_html,
        render_diff_text,
    )

    try:
        doc = diff_files(args.artifact_a, args.artifact_b,
                         entry_a=args.entry_a, entry_b=args.entry_b)
    except DiffError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json == "-":
        sys.stdout.write(diff_json(doc))
    else:
        print(render_diff_text(doc, top=args.top))
        if args.json is not None:
            path = pathlib.Path(args.json)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(diff_json(doc))
            print(f"wrote {args.json}", file=sys.stderr)
    if args.report is not None:
        path = pathlib.Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_diff_html(doc, top=args.top))
        print(f"wrote {args.report}", file=sys.stderr)
    if not doc["conservation_ok"]:
        print("diff conservation check FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_series(args) -> int:
    import json
    import pathlib

    from repro.obs.series import (
        SeriesLoadError,
        load_series_file,
        render_sparklines,
        series_csv,
    )

    try:
        doc = load_series_file(args.input)
    except SeriesLoadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    signals = args.signals or None
    if args.json == "-":
        print(json.dumps(doc, sort_keys=True, separators=(",", ":")))
        return 0
    if args.csv == "-":
        sys.stdout.write(series_csv(doc, signals=signals))
        return 0
    print(render_sparklines(doc, width=args.width, signals=signals))
    for flag, text in (
        (args.json, json.dumps(doc, sort_keys=True,
                               separators=(",", ":")) + "\n"),
        (args.csv, series_csv(doc, signals=signals)),
    ):
        if flag is not None:
            path = pathlib.Path(flag)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            print(f"wrote {flag}", file=sys.stderr)
    return 0


def _compare_diff_text(obs, args) -> str:
    """Attribute each approach's delta against our-approach from the
    compare run's own trace (``repro compare --diff``)."""
    from repro.obs.analyze import analyze_tracer
    from repro.obs.diff import (
        artifact_from_analyze_summary,
        diff_artifacts,
        render_diff_text,
    )

    art = artifact_from_analyze_summary(
        analyze_tracer(obs.tracer), "compare")
    base = next((r for r in art["runs"]
                 if r["label"].startswith("our-approach/")), None)
    if base is None:
        return "(no our-approach run recorded; nothing to diff against)"
    blocks = []
    for run in art["runs"]:
        if run is base:
            continue
        doc = diff_artifacts(
            {"kind": "analyze", "source": base["label"], "runs": [base]},
            {"kind": "analyze", "source": run["label"], "runs": [run]},
        )
        blocks.append(render_diff_text(doc, top=args.top))
    return "\n\n".join(blocks)


def _outcome_row(outcome) -> list:
    # Under fault injection a migration may abort (or still be in flight
    # at the plan horizon): name the outcome instead of printing NaN.
    if len(outcome.migration_times) == 1:
        mig_time = outcome.migration_times[0]
    elif outcome.aborts:
        retries = max(outcome.aborts - 1, 0)
        mig_time = f"aborted ({retries} retr{'y' if retries == 1 else 'ies'})"
    else:
        mig_time = "incomplete"
    return [
        mig_time,
        outcome.total_traffic() / 2**20,
        100 * outcome.read_throughput / IOR_MAX_READ,
        100 * outcome.write_throughput / IOR_MAX_WRITE,
    ]


def _cmd_single(args, obs=None) -> str:
    outcome = run_single_migration(
        args.approach, workload=args.workload, warmup=args.warmup,
        seed=args.seed, obs=obs, faults=_load_faults(args),
        restarts=args.restarts,
    )
    return render_table(
        f"Single migration: {args.approach} under {args.workload}",
        ["mig time (s)", "traffic (MB)", "read (%max)", "write (%max)"],
        {args.approach: _outcome_row(outcome)},
    )


def _cmd_compare(args, obs=None) -> str:
    rows = {}
    faults = _load_faults(args)
    for approach in APPROACHES:
        outcome = run_single_migration(
            approach, workload=args.workload, warmup=args.warmup,
            seed=args.seed, obs=obs, faults=faults,
            restarts=args.restarts,
        )
        rows[approach] = _outcome_row(outcome)
    return render_table(
        f"All approaches under {args.workload} (migration at t={args.warmup:g}s)",
        ["mig time (s)", "traffic (MB)", "read (%max)", "write (%max)"],
        rows,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "critical-path":
        return _cmd_critical_path(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "series":
        return _cmd_series(args)
    if args.command == "lint":
        from repro.lint.cli import run_lint

        return run_lint(args)
    obs = _make_obs(args)
    if args.command == "compare" and args.diff and obs is None:
        # --diff needs a recorded trace even when no export flag was given.
        from repro.obs import Observability

        obs = Observability(trace=True, causal=True)
    if args.command == "table1":
        from repro.experiments.table1 import render_table1

        print(render_table1())
    elif args.command == "fig1":
        from repro.cluster import Cluster
        from repro.experiments.config import graphene_spec
        from repro.experiments.fig1 import render_fig1
        from repro.simkernel import Environment

        print(render_fig1(Cluster(Environment(), graphene_spec(args.nodes))))
    elif args.command == "fig2":
        from repro.experiments.fig2 import render_fig2

        print(render_fig2(args.approach, obs=obs))
    elif args.command == "fig3":
        from repro.experiments.fig3 import render_fig3, run_fig3

        print(render_fig3(run_fig3(quick=args.quick, obs=obs)))
    elif args.command == "fig4":
        from repro.experiments.fig4 import render_fig4, run_fig4

        print(render_fig4(run_fig4(quick=args.quick, obs=obs)))
    elif args.command == "fig5":
        from repro.experiments.fig5 import render_fig5, run_fig5

        print(render_fig5(run_fig5(quick=args.quick, grid=args.grid, obs=obs)))
    elif args.command == "single":
        print(_cmd_single(args, obs=obs))
    elif args.command == "compare":
        print(_cmd_compare(args, obs=obs))
        if args.diff:
            print()
            print(_compare_diff_text(obs, args))
    _write_obs(obs, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
