"""Execute a :class:`~repro.faults.plan.FaultPlan` against a live cluster.

The injector is pure simulation glue: one process per scheduled fault
sleeps until the injection time, applies the fault to the right component
(topology / fabric / repository / disk), optionally sleeps out the
duration and reverts it.  Every injection and recovery is emitted as a
``fault.inject`` / ``fault.clear`` trace instant plus ``faults.*``
counters so chaos runs are fully auditable from the trace alone.
"""

from __future__ import annotations

from typing import Generator

from repro.faults.plan import BACKPLANE, FaultPlan, FaultSpec
from repro.simkernel.core import Environment

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules and applies the faults of one plan.

    Parameters
    ----------
    env:
        The simulation environment (also drives tracing/metrics).
    cluster:
        A :class:`~repro.cluster.cloud.Cluster`; the injector reaches its
        topology, fabric, nodes, local disks and striped repository.
    plan:
        The fault schedule.  Targets are validated eagerly so a bad plan
        fails at :meth:`start` time, not minutes into a run.
    """

    def __init__(self, env: Environment, cluster, plan: FaultPlan):
        self.env = env
        self.cluster = cluster
        self.plan = plan
        for spec in plan.faults:
            self._validate_target(spec)

    # -- public -------------------------------------------------------------

    def start(self) -> "FaultInjector":
        """Spawn one injection process per scheduled fault."""
        for i, spec in enumerate(self.plan.faults):
            self.env.process(
                self._run_fault(spec),
                name=f"fault:{i}:{spec.kind}:{spec.target}",
            )
        return self

    # -- target resolution ---------------------------------------------------

    def _validate_target(self, spec: FaultSpec) -> None:
        if spec.target == BACKPLANE:
            return
        if self._find_node(spec.target) is None:
            raise ValueError(
                f"fault target {spec.target!r} names no node in the cluster"
            )
        if spec.kind == "repo-server-down" and self._server_index(spec.target) is None:
            raise ValueError(
                f"no repository stripe server is co-located on {spec.target!r}"
            )

    def _find_node(self, name: str):
        for node in self.cluster.nodes:
            if node.name == name:
                return node
        return None

    def _server_index(self, name: str):
        for i, host in enumerate(self.cluster.repository.servers):
            if host.name == name:
                return i
        return None

    # -- execution -----------------------------------------------------------

    def _run_fault(self, spec: FaultSpec) -> Generator:
        if spec.at > 0:
            yield self.env.timeout(spec.at)
        self._emit("fault.inject", spec)
        self._apply(spec)
        if spec.duration is None:
            return
        yield self.env.timeout(spec.duration)
        self._emit("fault.clear", spec)
        self._clear(spec)

    def _emit(self, name: str, spec: FaultSpec) -> None:
        tr = self.env.tracer
        if tr.enabled:
            tr.instant(
                name,
                cat="faults",
                tid=f"faults:{spec.target}",
                args={
                    "kind": spec.kind,
                    "target": spec.target,
                    "severity": spec.severity,
                    "duration": spec.duration,
                },
            )
        mx = self.env.metrics
        if mx.enabled:
            if name == "fault.inject":
                mx.counter(f"faults.injected.{spec.kind}").inc()
            else:
                mx.counter(f"faults.cleared.{spec.kind}").inc()

    def _apply(self, spec: FaultSpec) -> None:
        topo = self.cluster.topology
        fabric = self.cluster.fabric
        if spec.kind == "link-degrade":
            if spec.target == BACKPLANE:
                topo.set_backplane_factor(spec.severity)
            else:
                topo.degrade_host(spec.target, spec.severity)
            fabric.sync()
        elif spec.kind == "link-partition":
            if spec.target == BACKPLANE:
                topo.set_backplane_factor(0.0)
                fabric.sync()
            elif spec.permanent:
                # A permanent partition is indistinguishable from a crash
                # at the network level: refuse new flows and tear down the
                # in-flight ones so nothing ticks forever at rate zero.
                host = topo.fail_host(spec.target)
                fabric.abort_flows(host)
                fabric.sync()
            else:
                topo.degrade_host(spec.target, 0.0)
                fabric.sync()
        elif spec.kind == "node-crash":
            node = self._find_node(spec.target)
            node.failed = True
            host = topo.fail_host(node.host)
            fabric.abort_flows(host)
            fabric.sync()
        elif spec.kind == "repo-server-down":
            self.cluster.repository.fail_server(self._server_index(spec.target))
        elif spec.kind == "slow-disk":
            self._find_node(spec.target).disk.set_bandwidth_factor(spec.severity)
        else:  # pragma: no cover - guarded by FaultSpec validation
            raise AssertionError(f"unhandled fault kind {spec.kind!r}")

    def _clear(self, spec: FaultSpec) -> None:
        topo = self.cluster.topology
        fabric = self.cluster.fabric
        if spec.kind in {"link-degrade", "link-partition"}:
            if spec.target == BACKPLANE:
                topo.set_backplane_factor(1.0)
            else:
                topo.restore_host(spec.target)
            fabric.sync()
        elif spec.kind == "node-crash":
            node = self._find_node(spec.target)
            node.failed = False
            topo.recover_host(node.host)
            fabric.sync()
        elif spec.kind == "repo-server-down":
            self.cluster.repository.recover_server(self._server_index(spec.target))
        elif spec.kind == "slow-disk":
            self._find_node(spec.target).disk.set_bandwidth_factor(1.0)
