"""Declarative fault plans: what fails, where, when, and how badly.

A :class:`FaultPlan` is the unit of reproducibility for chaos runs: it is
plain data (JSON round-trippable), it carries the failure-semantics knobs
the engines need (timeouts, retry budget), and :meth:`FaultPlan.random`
derives a plan deterministically from a seed so a failing chaos run can be
replayed byte-for-byte from ``(seed, plan)`` alone.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

#: The fault kinds the injector understands.
#:
#: ``link-degrade``   cap a host NIC (or the backplane) to ``severity`` x
#:                    its base capacity over a window.
#: ``link-partition`` zero a host's NIC capacities over a window; with no
#:                    ``duration`` the partition is permanent, which the
#:                    injector treats as a network-level crash.
#: ``node-crash``     fail a compute node: NICs zeroed, in-flight flows
#:                    torn down, new flows black-holed; with ``duration``
#:                    the node comes back (reboot).
#: ``repo-server-down`` fail one stripe server of the BLOB repository;
#:                    fetches fail over to replicas or raise.
#: ``slow-disk``      cap a node's local disk to ``severity`` x its base
#:                    bandwidth over a window.
KINDS = frozenset(
    {
        "link-degrade",
        "link-partition",
        "node-crash",
        "repo-server-down",
        "slow-disk",
    }
)

#: Kinds whose ``severity`` field is meaningful (a capacity fraction).
_SEVERITY_KINDS = frozenset({"link-degrade", "slow-disk"})

#: Special target name for backplane-wide link faults.
BACKPLANE = "backplane"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        One of :data:`KINDS`.
    target:
        Node name (e.g. ``"node1"``), or :data:`BACKPLANE` for
        backplane-wide link faults.  For ``repo-server-down`` the node
        name identifies the stripe server co-located on that node.
    at:
        Injection time (simulated seconds).
    duration:
        Recovery happens ``duration`` seconds after injection; ``None``
        means the fault is permanent.
    severity:
        Remaining capacity as a fraction of base for ``link-degrade`` /
        ``slow-disk`` (e.g. ``0.1`` = 10% of base left).  Ignored for the
        other kinds.
    """

    kind: str
    target: str
    at: float
    duration: Optional[float] = None
    severity: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(KINDS)}"
            )
        if self.at < 0:
            raise ValueError("fault injection time must be >= 0")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("fault duration must be positive (or None)")
        if self.kind in _SEVERITY_KINDS:
            if not 0.0 <= self.severity < 1.0:
                raise ValueError(
                    f"{self.kind} severity must lie in [0, 1): it is the "
                    "fraction of base capacity left during the fault"
                )
            if self.kind == "slow-disk" and self.severity <= 0.0:
                raise ValueError(
                    "slow-disk severity must be > 0 (a disk at zero "
                    "bandwidth is a node crash, not a slow disk)"
                )
        if self.kind == "repo-server-down" and self.target == BACKPLANE:
            raise ValueError("repo-server-down targets a node, not the backplane")
        if self.kind in {"node-crash", "slow-disk"} and self.target == BACKPLANE:
            raise ValueError(f"{self.kind} targets a node, not the backplane")

    @property
    def permanent(self) -> bool:
        return self.duration is None

    @property
    def clear_at(self) -> Optional[float]:
        return None if self.duration is None else self.at + self.duration

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown FaultSpec field(s): {sorted(extra)}")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A schedule of faults plus the failure semantics it imposes.

    The ``chunk_timeout`` / ``retry_max`` / ``retry_backoff`` /
    ``migration_timeout`` / ``restart_backoff`` fields override the
    corresponding :class:`~repro.core.config.MigrationConfig` fields when
    the plan is applied (``None`` leaves the config value alone).  Their
    defaults here are finite — a fault plan without finite timeouts would
    hang on the first black-holed transfer — whereas the config defaults
    are infinite so fault-free runs stay event-identical.

    ``horizon`` bounds the simulation (``env.run(until=horizon)``): the
    backstop that turns any residual hang into a bounded, inspectable
    outcome instead of a wedged run.
    """

    faults: Sequence[FaultSpec] = ()
    chunk_timeout: Optional[float] = 30.0
    retry_max: Optional[int] = 4
    retry_backoff: Optional[float] = 0.5
    migration_timeout: Optional[float] = 600.0
    restart_backoff: Optional[float] = None
    horizon: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if not isinstance(f, FaultSpec):
                raise TypeError(f"faults entries must be FaultSpec, got {f!r}")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive")
        if self.retry_max is not None and self.retry_max < 0:
            raise ValueError("retry_max must be >= 0")
        if self.retry_backoff is not None and self.retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        if self.migration_timeout is not None and self.migration_timeout <= 0:
            raise ValueError("migration_timeout must be positive")
        if self.restart_backoff is not None and self.restart_backoff < 0:
            raise ValueError("restart_backoff must be >= 0")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError("horizon must be positive")

    # -- MigrationConfig coupling -----------------------------------------

    _CONFIG_FIELDS = (
        "chunk_timeout",
        "retry_max",
        "retry_backoff",
        "migration_timeout",
        "restart_backoff",
    )

    def apply_to(self, config):
        """Return ``config`` with this plan's non-``None`` failure knobs."""
        overrides = {
            name: getattr(self, name)
            for name in self._CONFIG_FIELDS
            if getattr(self, name) is not None
        }
        return dataclasses.replace(config, **overrides)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        data = {name: getattr(self, name) for name in self._CONFIG_FIELDS}
        data["horizon"] = self.horizon
        data["faults"] = [f.to_dict() for f in self.faults]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        data = dict(data)
        faults = [FaultSpec.from_dict(f) for f in data.pop("faults", [])]
        known = {f.name for f in dataclasses.fields(cls)} - {"faults"}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown FaultPlan field(s): {sorted(extra)}")
        return cls(faults=faults, **data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def to_file(self, path) -> None:
        pathlib.Path(path).write_text(self.to_json())

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        return cls.from_json(pathlib.Path(path).read_text())

    # -- generation --------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        targets: Sequence[str],
        kinds: Iterable[str] = KINDS,
        n_faults: int = 3,
        window: tuple = (0.0, 30.0),
        max_duration: float = 10.0,
        **overrides,
    ) -> "FaultPlan":
        """Derive a reproducible plan from ``seed``.

        Every generated fault is temporary (``duration`` is always drawn),
        so random plans describe transient chaos the engines are expected
        to ride out or abort from cleanly.  Identical arguments produce an
        identical plan; differing seeds differ in firing times (and
        usually in kinds/targets too).
        """
        kinds = sorted(kinds)
        targets = list(targets)
        if not kinds or not targets:
            raise ValueError("random plans need at least one kind and target")
        rng = np.random.default_rng(seed)
        faults = []
        for _ in range(n_faults):
            kind = kinds[int(rng.integers(len(kinds)))]
            target = targets[int(rng.integers(len(targets)))]
            at = float(rng.uniform(window[0], window[1]))
            duration = float(rng.uniform(0.5, max_duration))
            severity = 0.0
            if kind in _SEVERITY_KINDS:
                severity = float(rng.uniform(0.05, 0.8))
            faults.append(
                FaultSpec(
                    kind=kind,
                    target=target,
                    at=at,
                    duration=duration,
                    severity=severity,
                )
            )
        faults.sort(key=lambda f: (f.at, f.kind, f.target))
        return cls(faults=faults, **overrides)
