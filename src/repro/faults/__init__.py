"""``repro.faults`` — deterministic, seed-reproducible fault injection.

The paper's conclusion attributes I/O pre-copy's practical adoption to its
"perceived higher safety (i.e. tolerates the failure of the destination
during migration)".  Testing that safety/overhead trade-off needs failure
as a first-class, *scriptable* input rather than a hand-rolled
``interrupt()`` in a test: this package schedules faults against any
simulated component and lets the migration engines react with their
bounded-retry/abort machinery.

Two pieces:

* :class:`FaultPlan` / :class:`FaultSpec` (:mod:`repro.faults.plan`) — a
  declarative, JSON-serializable schedule of faults (what, where, when,
  how severe, for how long) plus the failure-semantics knobs it imposes on
  :class:`~repro.core.config.MigrationConfig` (timeouts, retry budget).
  ``FaultPlan.random(seed)`` derives a reproducible plan from a seed.
* :class:`FaultInjector` (:mod:`repro.faults.injector`) — executes a plan
  against a live :class:`~repro.cluster.cloud.Cluster`: link degradation /
  partition (NIC or backplane), node crash, repository stripe-server
  failure, slow disk.  Every injection and recovery is emitted as a trace
  instant and counter through :mod:`repro.obs`.

Wire a plan into an experiment with ``run_single_migration(...,
faults=plan)`` or ``python -m repro.cli single --faults plan.json``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import KINDS, FaultPlan, FaultSpec

__all__ = ["KINDS", "FaultInjector", "FaultPlan", "FaultSpec"]
