"""Regenerates Figure 3: single live migration of IOR and AsyncWR.

Shape assertions encode the paper's qualitative claims (who wins, rough
factors); absolute values are simulation-scale, recorded in
``benchmarks/results/fig3.txt`` and compared against the paper in
EXPERIMENTS.md.
"""

import pytest

from benchmarks.conftest import full_scale, write_csv_table
from repro.experiments.config import IOR_MAX_READ, IOR_MAX_WRITE
from repro.experiments.fig3 import render_fig3, run_fig3


@pytest.fixture(scope="module")
def fig3_results():
    return run_fig3(quick=not full_scale())


def test_fig3a_migration_time(benchmark, fig3_results, results_sink):
    """Panel (a): ours beats every storage-transferring baseline for IOR;
    pvfs-shared (memory only) is fastest; precopy is the clear loser."""
    results = benchmark.pedantic(
        lambda: fig3_results, rounds=1, iterations=1
    )
    ior = {a: o.migration_time for a, o in results["ior"].items()}
    assert ior["pvfs-shared"] < ior["our-approach"]
    assert ior["our-approach"] < ior["postcopy"]
    assert ior["our-approach"] < ior["mirror"]
    # >10x at paper scale; the reduced quick geometry still shows >2x.
    assert ior["precopy"] > 2 * ior["our-approach"]
    asyncwr = {a: o.migration_time for a, o in results["asyncwr"].items()}
    assert asyncwr["precopy"] > max(
        v for a, v in asyncwr.items() if a != "precopy"
    )
    results_sink("fig3", render_fig3(results))
    write_csv_table(
        "fig3a", ["ior_s", "asyncwr_s"],
        {a: [ior[a], asyncwr[a]] for a in ior},
    )
    write_csv_table(
        "fig3b", ["ior_bytes", "asyncwr_bytes"],
        {
            a: [
                results["ior"][a].total_traffic(),
                results["asyncwr"][a].total_traffic(),
            ]
            for a in ior
        },
    )


def test_fig3b_network_traffic(benchmark, fig3_results):
    """Panel (b): ours/postcopy lowest; pvfs-shared an order of magnitude
    above ours for IOR; precopy re-sends inflate it well past mirror."""
    results = benchmark.pedantic(lambda: fig3_results, rounds=1, iterations=1)
    traffic = {a: o.total_traffic() for a, o in results["ior"].items()}
    # >10x at paper scale; the reduced quick geometry still shows >4x.
    factor = 5 if full_scale() else 4
    assert traffic["pvfs-shared"] > factor * traffic["our-approach"]
    assert traffic["precopy"] > traffic["mirror"]
    assert traffic["mirror"] > traffic["our-approach"]
    assert traffic["postcopy"] < 1.3 * traffic["our-approach"]


def test_fig3c_normalized_throughput(benchmark, fig3_results):
    """Panel (c): pvfs-shared reads <15 % / writes <10 % of max; ours keeps
    the best write throughput among storage-transferring approaches and
    reads far above pure postcopy."""
    results = benchmark.pedantic(lambda: fig3_results, rounds=1, iterations=1)
    ior = results["ior"]
    read_pct = {a: o.read_throughput / IOR_MAX_READ for a, o in ior.items()}
    write_pct = {a: o.write_throughput / IOR_MAX_WRITE for a, o in ior.items()}
    assert read_pct["pvfs-shared"] < 0.15
    assert write_pct["pvfs-shared"] < 0.10
    assert read_pct["our-approach"] > read_pct["postcopy"]
    assert read_pct["our-approach"] > read_pct["precopy"]
    assert write_pct["our-approach"] > write_pct["mirror"]
    assert write_pct["our-approach"] > write_pct["precopy"]
    assert write_pct["precopy"] < 0.5
