#!/usr/bin/env python
"""Benchmark trajectory harness: track simulator performance over time.

Unlike the pytest-benchmark suites (``bench_simulator.py``,
``bench_report.py``) this is a plain script with no test-framework
dependency, so CI can run it directly and keep a machine-readable
history.  Each invocation

* runs a fixed set of simulator scenarios (event-loop ticker, fluid
  share churn, max-min recomputation, one end-to-end hybrid migration),
  each with one warmup run then median-of-3 timed runs, measuring
  wall-clock, events processed (the kernel's lifetime
  ``Environment.events_processed`` counter), peak RSS and — via the
  ``repro.obs.prof`` self-profiler — a per-subsystem ``wall_s``
  breakdown plus work counters (solver invocations, links visited,
  heap operations, chunk scans);
* runs one *traced* fig2 migration with causal recording, feeds the
  trace to ``repro.obs.analyze`` and fails (exit 1) unless every run's
  per-cause bytes conserve exactly against the TrafficMeter total *and*
  every migration attempt's critical-path segments sum exactly to its
  wall time;
* appends one entry to ``BENCH_simulator.json`` (a JSON array at the
  repo root by default) so successive runs form a trajectory, and fails
  if aggregate kernel events/sec regressed more than 30% against the
  previous entry of the same mode (``--no-gate`` records the entry
  without failing, for noisy machines).

Usage::

    PYTHONPATH=src python benchmarks/trajectory.py --quick \
        --report report.html
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import platform
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

if "repro" not in sys.modules:  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.simkernel import Environment  # noqa: E402

SCHEMA = "repro.bench/1"
MB = 2**20


def _peak_rss_kb() -> int | None:
    """Peak resident set size of this process, in KiB (None off-Linux)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return rss // 1024 if sys.platform == "darwin" else rss


def scenario_event_loop(quick: bool, prof):
    """Ping-pong timeout chains: pure kernel overhead per event."""
    ticks = 5000 if quick else 20000
    env = Environment()
    env.profiler = prof

    def ticker():
        for _ in range(ticks):
            yield env.timeout(1.0)

    for _ in range(4):
        env.process(ticker())
    env.run()
    assert env.now == float(ticks)
    return env.now, env.events_processed


def scenario_fluid_churn(quick: bool, prof):
    """Arrivals/departures on one fluid resource (disk model hot path)."""
    from repro.simkernel.fluid import FluidShare

    ops = 1500 if quick else 3000
    env = Environment()
    env.profiler = prof
    share = FluidShare(env, capacity=1e6)

    def spawner():
        for i in range(ops):
            share.transfer(1e4 + (i % 7) * 1e3)
            yield env.timeout(0.003)

    env.process(spawner())
    env.run()
    assert share.total_bytes > 0
    return share.total_bytes, env.events_processed


def scenario_maxmin(quick: bool, prof):
    """Incremental rate recomputation at fig4 scale (60 hosts, ~90 flows).

    Drives :class:`~repro.netsim.fairness.IncrementalMaxMin` the way the
    fabric does: a cyclic edit script alternates between 10 distinct
    flow-set configurations (arrivals/departures), and every fifth of
    the run a link fault + recovery bumps the topology version and
    invalidates every memoized solution.  Between edits, repeat solves
    are served from the memo; the ``maxmin.links_visited`` counter only
    grows on real solves, so links-visited-per-invocation is the work
    metric the trajectory gate tracks.
    """
    from repro.netsim.fairness import IncrementalMaxMin
    from repro.netsim.topology import Topology

    rounds = 500 if quick else 2000
    rng = np.random.default_rng(1)
    n_hosts, n_flows = 60, 90
    topo = Topology(backplane=2.5e9)
    for i in range(n_hosts):
        topo.add_host(f"h{i}", 117.5e6)
    base_srcs = rng.integers(0, n_hosts, n_flows).astype(np.intp)
    base_dsts = (base_srcs + rng.integers(1, n_hosts, n_flows)) % n_hosts
    base_weights = rng.uniform(0.5, 4.0, n_flows)
    configs = []
    for k in range(10):
        keep = np.ones(n_flows, dtype=bool)
        keep[rng.integers(0, n_flows, size=k)] = False
        configs.append((base_srcs[keep].copy(), base_dsts[keep].copy(),
                        base_weights[keep].copy()))
    solver = IncrementalMaxMin(topo)
    stats = {} if prof.enabled else None
    fault_every = max(rounds // 5, 1)
    total = 0.0
    rates = None
    with prof.scope("maxmin.solve"):
        for r in range(rounds):
            if r % fault_every == fault_every - 1:
                host = topo.hosts[r % n_hosts]
                topo.degrade_host(host, 0.5)
                topo.restore_host(host)
            srcs, dsts, weights = configs[r % len(configs)]
            rates = solver.solve(weights, srcs, dsts, stats=stats)
            total += float(rates.sum())
    if stats is not None:
        prof.count("maxmin.invocations", rounds)
        prof.count("maxmin.rounds", stats.get("rounds", 0))
        prof.count("maxmin.links_visited", stats.get("links_visited", 0))
        prof.count("maxmin.solves", stats.get("solves", 0))
        prof.count("maxmin.memo_hits", stats.get("memo_hits", 0))
    assert rates is not None and (rates > 0).all()
    return total, rounds


def scenario_migration(quick: bool, prof):
    """A complete hybrid migration under write pressure."""
    from repro.cluster import CloudMiddleware, Cluster
    from repro.experiments.config import graphene_spec
    from repro.workloads.synthetic import SequentialWriter

    ws = (64 if quick else 256) * MB
    total = (128 if quick else 512) * MB
    env = Environment()
    env.profiler = prof
    cloud = CloudMiddleware(Cluster(env, graphene_spec(8)))
    vm = cloud.deploy("vm0", cloud.cluster.node(0), working_set=ws)
    SequentialWriter(
        vm, total_bytes=total, rate=60e6, op_size=4 * MB,
        region_offset=1024 * MB, region_size=total,
    ).start()
    done = {}

    def migrator():
        yield env.timeout(2.0)
        done["rec"] = yield cloud.migrate(vm, cloud.cluster.node(1))

    env.process(migrator())
    env.run()
    assert done["rec"].migration_time > 0
    return done["rec"].migration_time, env.events_processed


SCENARIOS = [
    ("event_loop", scenario_event_loop),
    ("fluid_share_churn", scenario_fluid_churn),
    ("maxmin_fast_path", scenario_maxmin),
    ("end_to_end_migration", scenario_migration),
]

#: Per scenario: discarded warmup runs, then timed runs (median reported).
WARMUP_RUNS = 1
TIMED_RUNS = 3


def _time_scenario(name: str, fn, quick: bool):
    """Warmup, then median-of-``TIMED_RUNS`` with profiling *off* (the
    gate tracks raw kernel throughput), then one extra profiled run for
    the per-subsystem breakdown.  Returns ``(wall, events, profiler,
    all_walls)``."""
    import gc

    from repro.obs.prof import NULL_PROFILER, Profiler

    for _ in range(WARMUP_RUNS):
        fn(quick, NULL_PROFILER)
    runs = []
    for _ in range(TIMED_RUNS):
        # Collect leftovers from the previous run (dead Environments hold
        # large cyclic graphs) so its garbage isn't billed to this run.
        gc.collect()
        t0 = time.perf_counter()
        _result, events = fn(quick, NULL_PROFILER)
        wall = time.perf_counter() - t0
        runs.append((wall, events))
    by_wall = sorted(runs, key=lambda r: r[0])
    wall, events = by_wall[len(by_wall) // 2]
    prof = Profiler()
    fn(quick, prof)
    return wall, events, prof, [r[0] for r in runs]


def traced_fig2(report_path: str | None):
    """One traced fig2 run through the analyzer; returns (summary, stats)."""
    from repro.experiments.fig2 import run_fig2
    from repro.obs import Observability
    from repro.obs.analyze import analyze_tracer, render_html

    obs = Observability(trace=True, causal=True)
    t0 = time.perf_counter()
    record, _stats, _traffic = run_fig2(obs=obs)
    run_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    summary = analyze_tracer(obs.tracer)
    analyze_wall = time.perf_counter() - t0

    if report_path:
        path = pathlib.Path(report_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_html(summary))
        print(f"wrote {path}", file=sys.stderr)
    return summary, {
        "migration_time_s": record.migration_time,
        "run_wall_s": run_wall,
        "analyze_wall_s": analyze_wall,
        "trace_events": sum(r["events"] for r in summary["runs"]),
    }


def _git_head() -> str | None:
    try:
        out = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        return out.stdout.strip() or None
    except OSError:  # pragma: no cover - no git in PATH
        return None


def run_trajectory(quick: bool, report: str | None) -> dict:
    entry = {
        "schema": SCHEMA,
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git": _git_head(),
        "scenarios": [],
    }
    for name, fn in SCENARIOS:
        wall, events, prof, all_walls = _time_scenario(name, fn, quick)
        entry["scenarios"].append({
            "name": name,
            "wall_s": round(wall, 6),
            "wall_s_runs": [round(w, 6) for w in all_walls],
            "events": events,
            "events_per_s": round(events / wall, 1) if wall > 0 else None,
            "peak_rss_kb": _peak_rss_kb(),
            # Host self-profile from one extra (profiled) run: exclusive
            # wall per subsystem scope path, plus the deterministic work
            # counters ROADMAP item 1 must shrink (solver rounds, links
            # visited, scans).  The timed runs above stay unprofiled so
            # events_per_s tracks the raw kernel.
            "profile": {
                "wall_s": {
                    path: round(node["exclusive_s"], 6)
                    for path, node in prof.flat().items()
                },
                "counters": prof.counters,
            },
        })
        print(f"  {name:24s} {wall:8.3f} s   {events:>9} events   "
              f"(median of {TIMED_RUNS})")

    summary, fig2_stats = traced_fig2(report)
    entry["conservation_ok"] = summary["conservation_ok"]
    entry["critical_path_ok"] = summary.get("critical_path_ok", True)
    entry["scenarios"].append({
        "name": "traced_fig2_analyze",
        "wall_s": round(fig2_stats["run_wall_s"] + fig2_stats["analyze_wall_s"], 6),
        "analyze_wall_s": round(fig2_stats["analyze_wall_s"], 6),
        "events": fig2_stats["trace_events"],
        "migration_time_s": round(fig2_stats["migration_time_s"], 6),
        "peak_rss_kb": _peak_rss_kb(),
    })
    print(f"  {'traced_fig2_analyze':24s} "
          f"{fig2_stats['run_wall_s'] + fig2_stats['analyze_wall_s']:8.3f} s   "
          f"{fig2_stats['trace_events']:>9} events")
    print(f"  conservation: {'exact' if entry['conservation_ok'] else 'FAILED'}")
    print("  critical path: "
          f"{'exact' if entry['critical_path_ok'] else 'FAILED'}")
    return entry


#: Events/sec may regress by at most this much vs. the previous entry.
GATE_REGRESSION = 0.30


def _aggregate_events_per_s(entry: dict) -> float | None:
    """Lifetime events over lifetime wall across the kernel scenarios.

    Only scenarios reporting ``events_per_s`` participate (the maxmin
    scenario counts recompute rounds, the traced run measures the
    analyzer, not the kernel) — the aggregate tracks raw simulator
    throughput, which is what the gate protects.
    """
    events = 0
    wall = 0.0
    for sc in entry.get("scenarios", []):
        if sc.get("events_per_s") is None:
            continue
        events += sc.get("events", 0)
        wall += sc.get("wall_s", 0.0)
    if wall <= 0 or events == 0:
        return None
    return events / wall


def check_regression(entry: dict, history: list) -> str | None:
    """Gate: >GATE_REGRESSION drop in aggregate events/sec vs. the most
    recent previous entry of the same mode fails the run.

    Returns an error string on regression, None when the gate passes
    (including when there is no comparable history yet).
    """
    current = _aggregate_events_per_s(entry)
    if current is None:
        return None
    previous = None
    for old in reversed(history):
        if old.get("mode") == entry.get("mode") and old is not entry:
            previous = _aggregate_events_per_s(old)
            if previous is not None:
                break
    if previous is None:
        print("  gate: no previous entry to compare against", file=sys.stderr)
        return None
    ratio = current / previous
    print(f"  gate: {current:,.0f} events/s vs previous {previous:,.0f} "
          f"({100 * (ratio - 1):+.1f}%)", file=sys.stderr)
    if ratio < 1.0 - GATE_REGRESSION:
        return (
            f"events/sec regressed {100 * (1 - ratio):.1f}% "
            f"(current {current:,.0f}, previous {previous:,.0f}, "
            f"allowed {100 * GATE_REGRESSION:.0f}%)"
        )
    return None


def _links_per_solve(entry: dict) -> float | None:
    """``maxmin.links_visited`` per solver invocation in the maxmin
    scenario — the deterministic work metric behind the wall-clock."""
    for sc in entry.get("scenarios", []):
        if sc.get("name") != "maxmin_fast_path":
            continue
        counters = sc.get("profile", {}).get("counters", {})
        links = counters.get("maxmin.links_visited")
        invocations = counters.get("maxmin.invocations")
        if links and invocations:
            return links / invocations
    return None


def check_links_regression(entry: dict, history: list) -> str | None:
    """Gate: links visited per maxmin solve may grow at most
    ``GATE_REGRESSION`` vs. the previous same-mode entry.

    Wall-clock gates tolerate noisy machines; this one is deterministic —
    a breach means the incremental solver genuinely lost caching or
    compaction, not that the CI runner was busy.  Entries predating the
    counter (or with profiling off) are skipped.
    """
    current = _links_per_solve(entry)
    if current is None:
        return None
    previous = None
    for old in reversed(history):
        if old.get("mode") == entry.get("mode") and old is not entry:
            previous = _links_per_solve(old)
            if previous is not None:
                break
    if previous is None:
        return None
    print(f"  links/solve gate: {current:,.1f} vs previous {previous:,.1f}",
          file=sys.stderr)
    if current > previous * (1.0 + GATE_REGRESSION):
        return (
            f"maxmin.links_visited per solve regressed "
            f"{100 * (current / previous - 1):.1f}% "
            f"(current {current:,.1f}, previous {previous:,.1f}, "
            f"allowed {100 * GATE_REGRESSION:.0f}%)"
        )
    return None


def _previous_same_mode(entry: dict, history: list) -> dict | None:
    for old in reversed(history):
        if old.get("mode") == entry.get("mode") and old is not entry:
            return old
    return None


def explain_regression(entry: dict, history: list, top: int = 8) -> str | None:
    """The ranked delta table attributing a gate failure.

    Runs the ``repro.obs.diff`` engine between the previous same-mode
    entry and this one, so a tripped gate names the scenarios, profiler
    scopes and work counters that moved instead of a bare percentage.
    Returns None when there is no comparable history.
    """
    previous = _previous_same_mode(entry, history)
    if previous is None:
        return None
    from repro.obs.diff import (
        artifact_from_bench_entry,
        diff_artifacts,
        render_diff_text,
    )

    doc = diff_artifacts(
        artifact_from_bench_entry(previous, "previous entry"),
        artifact_from_bench_entry(entry, "this entry"),
    )
    return render_diff_text(doc, top=top)


def append_entry(out_path: pathlib.Path, entry: dict) -> list:
    """Append ``entry`` to the trajectory file; returns the new history."""
    history = []
    if out_path.exists():
        try:
            history = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            print(f"warning: {out_path} was not valid JSON; starting fresh",
                  file=sys.stderr)
        if not isinstance(history, list):
            history = []
    history.append(entry)
    out_path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return history


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced geometry for a fast CI run")
    parser.add_argument("--out", metavar="PATH",
                        default=str(REPO_ROOT / "BENCH_simulator.json"),
                        help="trajectory file to append to "
                             "(default: BENCH_simulator.json at repo root)")
    parser.add_argument("--report", metavar="OUT.html", default=None,
                        help="also write the traced run's HTML flight report")
    parser.add_argument("--no-gate", action="store_true",
                        help="record the entry but never fail on an "
                             "events/sec regression (for noisy machines)")
    args = parser.parse_args(argv)

    print(f"trajectory ({'quick' if args.quick else 'full'} mode):")
    entry = run_trajectory(args.quick, args.report)
    out_path = pathlib.Path(args.out)
    history = append_entry(out_path, entry)
    print(f"appended entry to {out_path}", file=sys.stderr)
    rc = 0
    if not entry["conservation_ok"]:
        print("error: byte-attribution conservation check failed",
              file=sys.stderr)
        rc = 1
    if not entry["critical_path_ok"]:
        print("error: critical-path conservation check failed",
              file=sys.stderr)
        rc = 1
    tripped = False
    for gate in (check_regression, check_links_regression):
        regression = gate(entry, history)
        if regression is not None:
            print(f"error: {regression}", file=sys.stderr)
            tripped = True
            if args.no_gate:
                print("(--no-gate: recorded but not failing)", file=sys.stderr)
            else:
                rc = 1
    if tripped:
        # Attribute the regression: which scenarios, scopes and counters
        # moved against the previous same-mode entry, ranked by |delta|.
        explanation = explain_regression(entry, history)
        if explanation is not None:
            print(explanation, file=sys.stderr)
    return rc


if __name__ == "__main__":
    sys.exit(main())
