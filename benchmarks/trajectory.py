#!/usr/bin/env python
"""Benchmark trajectory harness: track simulator performance over time.

Unlike the pytest-benchmark suites (``bench_simulator.py``,
``bench_report.py``) this is a plain script with no test-framework
dependency, so CI can run it directly and keep a machine-readable
history.  Each invocation

* runs a fixed set of simulator scenarios (event-loop ticker, fluid
  share churn, max-min recomputation, one end-to-end hybrid migration),
  measuring wall-clock, events processed (the kernel's lifetime
  ``Environment.events_processed`` counter) and peak RSS;
* runs one *traced* fig2 migration, feeds the trace to
  ``repro.obs.analyze`` and fails (exit 1) unless every run's per-cause
  bytes conserve exactly against the TrafficMeter total;
* appends one entry to ``BENCH_simulator.json`` (a JSON array at the
  repo root by default) so successive runs form a trajectory.

Usage::

    PYTHONPATH=src python benchmarks/trajectory.py --quick \
        --report report.html
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import platform
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

if "repro" not in sys.modules:  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.simkernel import Environment  # noqa: E402

SCHEMA = "repro.bench/1"
MB = 2**20


def _peak_rss_kb() -> int | None:
    """Peak resident set size of this process, in KiB (None off-Linux)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return rss // 1024 if sys.platform == "darwin" else rss


def scenario_event_loop(quick: bool):
    """Ping-pong timeout chains: pure kernel overhead per event."""
    ticks = 1000 if quick else 5000
    env = Environment()

    def ticker():
        for _ in range(ticks):
            yield env.timeout(1.0)

    for _ in range(4):
        env.process(ticker())
    env.run()
    assert env.now == float(ticks)
    return env.now, env.events_processed


def scenario_fluid_churn(quick: bool):
    """Arrivals/departures on one fluid resource (disk model hot path)."""
    from repro.simkernel.fluid import FluidShare

    ops = 150 if quick else 500
    env = Environment()
    share = FluidShare(env, capacity=1e6)

    def spawner():
        for i in range(ops):
            share.transfer(1e4 + (i % 7) * 1e3)
            yield env.timeout(0.003)

    env.process(spawner())
    env.run()
    assert share.total_bytes > 0
    return share.total_bytes, env.events_processed


def scenario_maxmin(quick: bool):
    """Repeated rate recomputations at fig4 scale (60 hosts, 90 flows)."""
    from repro.netsim.fairness import maxmin_single_switch

    rounds = 50 if quick else 500
    rng = np.random.default_rng(1)
    n_hosts, n_flows = 60, 90
    srcs = rng.integers(0, n_hosts, n_flows).astype(np.intp)
    dsts = (srcs + rng.integers(1, n_hosts, n_flows)) % n_hosts
    weights = rng.uniform(0.5, 4.0, n_flows)
    nic = np.full(n_hosts, 117.5e6)
    rates = None
    for _ in range(rounds):
        rates = maxmin_single_switch(weights, srcs, dsts, nic, nic, 2.5e9)
    assert rates is not None and (rates > 0).all()
    return float(rates.sum()), rounds


def scenario_migration(quick: bool):
    """A complete hybrid migration under write pressure."""
    from repro.cluster import CloudMiddleware, Cluster
    from repro.experiments.config import graphene_spec
    from repro.workloads.synthetic import SequentialWriter

    ws = (64 if quick else 256) * MB
    total = (128 if quick else 512) * MB
    env = Environment()
    cloud = CloudMiddleware(Cluster(env, graphene_spec(8)))
    vm = cloud.deploy("vm0", cloud.cluster.node(0), working_set=ws)
    SequentialWriter(
        vm, total_bytes=total, rate=60e6, op_size=4 * MB,
        region_offset=1024 * MB, region_size=total,
    ).start()
    done = {}

    def migrator():
        yield env.timeout(2.0)
        done["rec"] = yield cloud.migrate(vm, cloud.cluster.node(1))

    env.process(migrator())
    env.run()
    assert done["rec"].migration_time > 0
    return done["rec"].migration_time, env.events_processed


SCENARIOS = [
    ("event_loop", scenario_event_loop),
    ("fluid_share_churn", scenario_fluid_churn),
    ("maxmin_fast_path", scenario_maxmin),
    ("end_to_end_migration", scenario_migration),
]


def traced_fig2(report_path: str | None):
    """One traced fig2 run through the analyzer; returns (summary, stats)."""
    from repro.experiments.fig2 import run_fig2
    from repro.obs import Observability
    from repro.obs.analyze import analyze_tracer, render_html

    obs = Observability(trace=True)
    t0 = time.perf_counter()
    record, _stats, _traffic = run_fig2(obs=obs)
    run_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    summary = analyze_tracer(obs.tracer)
    analyze_wall = time.perf_counter() - t0

    if report_path:
        path = pathlib.Path(report_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_html(summary))
        print(f"wrote {path}", file=sys.stderr)
    return summary, {
        "migration_time_s": record.migration_time,
        "run_wall_s": run_wall,
        "analyze_wall_s": analyze_wall,
        "trace_events": sum(r["events"] for r in summary["runs"]),
    }


def _git_head() -> str | None:
    try:
        out = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        return out.stdout.strip() or None
    except OSError:  # pragma: no cover - no git in PATH
        return None


def run_trajectory(quick: bool, report: str | None) -> dict:
    entry = {
        "schema": SCHEMA,
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git": _git_head(),
        "scenarios": [],
    }
    for name, fn in SCENARIOS:
        t0 = time.perf_counter()
        _result, events = fn(quick)
        wall = time.perf_counter() - t0
        entry["scenarios"].append({
            "name": name,
            "wall_s": round(wall, 6),
            "events": events,
            "events_per_s": round(events / wall, 1) if wall > 0 else None,
            "peak_rss_kb": _peak_rss_kb(),
        })
        print(f"  {name:24s} {wall:8.3f} s   {events:>9} events")

    summary, fig2_stats = traced_fig2(report)
    entry["conservation_ok"] = summary["conservation_ok"]
    entry["scenarios"].append({
        "name": "traced_fig2_analyze",
        "wall_s": round(fig2_stats["run_wall_s"] + fig2_stats["analyze_wall_s"], 6),
        "analyze_wall_s": round(fig2_stats["analyze_wall_s"], 6),
        "events": fig2_stats["trace_events"],
        "migration_time_s": round(fig2_stats["migration_time_s"], 6),
        "peak_rss_kb": _peak_rss_kb(),
    })
    print(f"  {'traced_fig2_analyze':24s} "
          f"{fig2_stats['run_wall_s'] + fig2_stats['analyze_wall_s']:8.3f} s   "
          f"{fig2_stats['trace_events']:>9} events")
    print(f"  conservation: {'exact' if entry['conservation_ok'] else 'FAILED'}")
    return entry


def append_entry(out_path: pathlib.Path, entry: dict) -> None:
    history = []
    if out_path.exists():
        try:
            history = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            print(f"warning: {out_path} was not valid JSON; starting fresh",
                  file=sys.stderr)
        if not isinstance(history, list):
            history = []
    history.append(entry)
    out_path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced geometry for a fast CI run")
    parser.add_argument("--out", metavar="PATH",
                        default=str(REPO_ROOT / "BENCH_simulator.json"),
                        help="trajectory file to append to "
                             "(default: BENCH_simulator.json at repo root)")
    parser.add_argument("--report", metavar="OUT.html", default=None,
                        help="also write the traced run's HTML flight report")
    args = parser.parse_args(argv)

    print(f"trajectory ({'quick' if args.quick else 'full'} mode):")
    entry = run_trajectory(args.quick, args.report)
    out_path = pathlib.Path(args.out)
    append_entry(out_path, entry)
    print(f"appended entry to {out_path}", file=sys.stderr)
    if not entry["conservation_ok"]:
        print("error: byte-attribution conservation check failed",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
