"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one table/figure of the paper: it runs
the corresponding experiment under ``pytest-benchmark`` timing, prints the
paper-style rows, and writes them to ``benchmarks/results/``.

Scale control: the environment variable ``REPRO_FULL=1`` runs the paper's
full parameters (30 concurrent sources, 1..30 sweep, 4x4 CM1 grid with the
full step count); the default is a reduced-but-structurally-identical
configuration so a benchmark pass completes in a couple of minutes.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "") == "1"


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def write_csv_table(name: str, columns, rows) -> None:
    """Companion CSV next to the txt rendering (plotting-ready)."""
    from repro.experiments.export import write_table_csv

    RESULTS_DIR.mkdir(exist_ok=True)
    write_table_csv(RESULTS_DIR / f"{name}.csv", columns, rows)


def write_csv_series(name: str, x_label, series) -> None:
    from repro.experiments.export import write_series_csv

    RESULTS_DIR.mkdir(exist_ok=True)
    write_series_csv(RESULTS_DIR / f"{name}.csv", x_label, series)


@pytest.fixture
def results_sink():
    return write_result
