"""Regenerates Table 1 (summary of compared approaches)."""

from repro.experiments.table1 import render_table1, run_table1


def test_table1(benchmark, results_sink):
    rows = benchmark(run_table1)
    assert len(rows) == 5
    assert rows[0][0] == "our-approach"
    results_sink("table1", render_table1())
