"""Regenerates Figure 5: CM1 under successive live migrations."""

import pytest

from benchmarks.conftest import full_scale, write_csv_series
from repro.experiments.fig5 import render_fig5, run_fig5


@pytest.fixture(scope="module")
def fig5_results():
    return run_fig5(quick=not full_scale())


def test_fig5a_cumulated_migration_time(benchmark, fig5_results, results_sink):
    """Panel (a): linear growth for everyone; precopy roughly 2x ours;
    postcopy close to ours; mirror between."""
    results = benchmark.pedantic(lambda: fig5_results, rounds=1, iterations=1)
    counts = sorted(results["our-approach"])
    hi = counts[-1]
    cum = {a: results[a][hi][0].cumulated_migration_time for a in results}
    assert cum["precopy"] > 1.4 * cum["our-approach"]
    assert cum["mirror"] > cum["our-approach"] * 0.9
    assert abs(cum["postcopy"] - cum["our-approach"]) < 0.5 * cum["our-approach"]
    # Linear growth: per-migration time roughly constant across the sweep.
    if len(counts) >= 2:
        lo = counts[0]
        ours_lo = results["our-approach"][lo][0].cumulated_migration_time / lo
        ours_hi = results["our-approach"][hi][0].cumulated_migration_time / hi
        assert ours_hi < 2.5 * ours_lo
    results_sink("fig5", render_fig5(results))
    from repro.experiments.runner import SeriesResult

    for panel, metric in (
        ("fig5a", lambda o, b: o.cumulated_migration_time),
        ("fig5b", lambda o, b: o.migration_traffic),
        ("fig5c", lambda o, b: o.workload_elapsed - b.workload_elapsed),
    ):
        series = []
        for approach, per_count in results.items():
            s = SeriesResult(approach)
            for n, (outcome, baseline) in per_count.items():
                s.add(n, metric(outcome, baseline))
            series.append(s)
        write_csv_series(panel, "n_migrations", series)


def test_fig5b_migration_traffic(benchmark, fig5_results):
    """Panel (b): pvfs-shared's (remote I/O) traffic dwarfs everyone;
    postcopy slightly below ours; precopy above ours."""
    fig5_results = benchmark.pedantic(lambda: fig5_results, rounds=1, iterations=1)
    counts = sorted(fig5_results["our-approach"])
    hi = counts[-1]
    traf = {a: fig5_results[a][hi][0].migration_traffic for a in fig5_results}
    # ~3x at the full 4x4 grid; the tiny quick grid compresses the gap.
    factor = 2.5 if full_scale() else 1.2
    assert traf["pvfs-shared"] > factor * traf["our-approach"]
    assert traf["postcopy"] <= traf["our-approach"]
    assert traf["precopy"] > traf["our-approach"]


def test_fig5c_execution_time_increase(benchmark, fig5_results):
    """Panel (c): ours adds the least execution time among the
    storage-transferring approaches; precopy adds the most."""
    fig5_results = benchmark.pedantic(lambda: fig5_results, rounds=1, iterations=1)
    counts = sorted(fig5_results["our-approach"])
    hi = counts[-1]
    inc = {
        a: fig5_results[a][hi][0].workload_elapsed
        - fig5_results[a][hi][1].workload_elapsed
        for a in fig5_results
    }
    assert inc["precopy"] > 1.5 * inc["our-approach"]
    assert inc["our-approach"] <= inc["mirror"]
    # One slow rank drags all: the BSP amplifies migration cost into
    # app-visible time of the same order as the migrations themselves.
    assert inc["our-approach"] > 0
