"""Meta-benchmarks: the flight-recorder analyzer and report renderer.

Companion to ``bench_simulator.py``: where that file times the simulator
itself, this one times what happens *after* a run — ingesting a traced
migration's event stream, deriving the attribution/phase/heatmap
summary, and rendering the HTML report.  The trace is produced once per
session (a real hybrid migration under write pressure) and shared.
"""

import pytest

MB = 2**20


@pytest.fixture(scope="module")
def traced_events():
    """Chrome-trace events from one traced hybrid migration."""
    from repro.cluster import CloudMiddleware, Cluster
    from repro.experiments.config import graphene_spec
    from repro.obs import Observability
    from repro.obs.export import chrome_trace
    from repro.simkernel import Environment
    from repro.workloads.synthetic import SequentialWriter

    obs = Observability(trace=True)
    with obs.run_scope("bench/report"):
        env = Environment()
        obs.install(env)
        cloud = CloudMiddleware(Cluster(env, graphene_spec(8)))
        vm = cloud.deploy("vm0", cloud.cluster.node(0), working_set=128 * MB)
        SequentialWriter(
            vm, total_bytes=256 * MB, rate=60e6, op_size=4 * MB,
            region_offset=1024 * MB, region_size=256 * MB,
        ).start()
        done = {}

        def migrator():
            yield env.timeout(2.0)
            done["rec"] = yield cloud.migrate(vm, cloud.cluster.node(1))

        env.process(migrator())
        env.run()
        obs.note_traffic(cloud.cluster.fabric.meter)
    return chrome_trace(obs.tracer)["traceEvents"]


def test_analyze_trace(benchmark, traced_events):
    """Full analysis pass: attribution + phases + heatmap per run."""
    from repro.obs.analyze import analyze_events

    summary = benchmark(analyze_events, traced_events)
    assert summary["conservation_ok"]
    assert summary["runs"]


def test_summary_json(benchmark, traced_events):
    """Deterministic JSON encoding of the summary."""
    from repro.obs.analyze import analyze_events, summary_json

    summary = analyze_events(traced_events)
    text = benchmark(summary_json, summary)
    assert text == summary_json(summary)  # stable across calls


def test_render_html(benchmark, traced_events):
    """Self-contained HTML report generation (inline SVG charts)."""
    from repro.obs.analyze import analyze_events, render_html

    summary = analyze_events(traced_events)
    html = benchmark(render_html, summary)
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html
