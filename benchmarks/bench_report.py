"""Meta-benchmarks: the flight-recorder analyzer and report renderer.

Companion to ``bench_simulator.py``: where that file times the simulator
itself, this one times what happens *after* a run — ingesting a traced
migration's event stream, deriving the attribution/phase/heatmap
summary, and rendering the HTML report.  The trace is produced once per
session (a real hybrid migration under write pressure) and shared.

Run directly, it instead renders the whole ``BENCH_simulator.json``
trajectory as per-scenario history tables (wall, events/s and the key
work counters across every recorded entry — not just the latest)::

    PYTHONPATH=src python benchmarks/bench_report.py [BENCH_simulator.json]
"""

import pytest

MB = 2**20


@pytest.fixture(scope="module")
def traced_events():
    """Chrome-trace events from one traced hybrid migration."""
    from repro.cluster import CloudMiddleware, Cluster
    from repro.experiments.config import graphene_spec
    from repro.obs import Observability
    from repro.obs.export import chrome_trace
    from repro.simkernel import Environment
    from repro.workloads.synthetic import SequentialWriter

    obs = Observability(trace=True)
    with obs.run_scope("bench/report"):
        env = Environment()
        obs.install(env)
        cloud = CloudMiddleware(Cluster(env, graphene_spec(8)))
        vm = cloud.deploy("vm0", cloud.cluster.node(0), working_set=128 * MB)
        SequentialWriter(
            vm, total_bytes=256 * MB, rate=60e6, op_size=4 * MB,
            region_offset=1024 * MB, region_size=256 * MB,
        ).start()
        done = {}

        def migrator():
            yield env.timeout(2.0)
            done["rec"] = yield cloud.migrate(vm, cloud.cluster.node(1))

        env.process(migrator())
        env.run()
        obs.note_traffic(cloud.cluster.fabric.meter)
    return chrome_trace(obs.tracer)["traceEvents"]


def test_analyze_trace(benchmark, traced_events):
    """Full analysis pass: attribution + phases + heatmap per run."""
    from repro.obs.analyze import analyze_events

    summary = benchmark(analyze_events, traced_events)
    assert summary["conservation_ok"]
    assert summary["runs"]


def test_summary_json(benchmark, traced_events):
    """Deterministic JSON encoding of the summary."""
    from repro.obs.analyze import analyze_events, summary_json

    summary = analyze_events(traced_events)
    text = benchmark(summary_json, summary)
    assert text == summary_json(summary)  # stable across calls


def test_render_html(benchmark, traced_events):
    """Self-contained HTML report generation (inline SVG charts)."""
    from repro.obs.analyze import analyze_events, render_html

    summary = analyze_events(traced_events)
    html = benchmark(render_html, summary)
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html


# -- trajectory history rendering (plain script mode) --------------------------

#: Counters worth a history column, per scenario, most informative first.
_KEY_COUNTERS = 3


def _entry_label(entry: dict) -> str:
    git = entry.get("git")
    ts = (entry.get("timestamp") or "")[:10]
    return f"{git} {ts}".strip() if git else (ts or "entry")


def _scenario_counters(entries: list[dict], name: str) -> list[str]:
    """The key counters for one scenario: those present in the most
    recent entry that has any, largest values first."""
    for entry in reversed(entries):
        for sc in entry.get("scenarios", []):
            if sc.get("name") != name:
                continue
            counters = sc.get("profile", {}).get("counters", {})
            if counters:
                ranked = sorted(counters, key=lambda k: (-counters[k], k))
                return ranked[:_KEY_COUNTERS]
    return []


def render_history(history: list[dict]) -> str:
    """Per-scenario history tables over every trajectory entry."""
    names: list[str] = list(dict.fromkeys(
        sc.get("name")
        for entry in history
        for sc in entry.get("scenarios", [])
    ))
    lines = [f"== BENCH trajectory: {len(history)} entries"]
    for name in names:
        counters = _scenario_counters(history, name)
        header = ("entry".ljust(20) + "mode".rjust(7) + "wall_s".rjust(10)
                  + "events".rjust(11) + "events/s".rjust(12))
        for c in counters:
            header += c.split(".")[-1].rjust(16)
        lines.append(f"-- {name}")
        lines.append(header)
        for entry in history:
            for sc in entry.get("scenarios", []):
                if sc.get("name") != name:
                    continue
                row = (_entry_label(entry)[:19].ljust(20)
                       + str(entry.get("mode", "?")).rjust(7))
                wall = sc.get("wall_s")
                row += (f"{wall:.3f}".rjust(10) if wall is not None
                        else "-".rjust(10))
                events = sc.get("events")
                row += (f"{events:,}".rjust(11) if events is not None
                        else "-".rjust(11))
                eps = sc.get("events_per_s")
                row += (f"{eps:,.0f}".rjust(12) if eps is not None
                        else "-".rjust(12))
                sc_counters = sc.get("profile", {}).get("counters", {})
                for c in counters:
                    value = sc_counters.get(c)
                    row += (f"{value:,}".rjust(16) if value is not None
                            else "-".rjust(16))
                lines.append(row)
        lines.append("")
    return "\n".join(lines).rstrip()


def main(argv=None) -> int:
    import argparse
    import json
    import pathlib
    import sys

    parser = argparse.ArgumentParser(
        description="render the BENCH trajectory as per-scenario history "
                    "tables")
    parser.add_argument(
        "trajectory", nargs="?",
        default=str(pathlib.Path(__file__).resolve().parent.parent
                    / "BENCH_simulator.json"),
        help="trajectory file (default: BENCH_simulator.json at repo root)")
    args = parser.parse_args(argv)
    path = pathlib.Path(args.trajectory)
    if not path.exists():
        print(f"error: {path} does not exist — run "
              "benchmarks/trajectory.py first", file=sys.stderr)
        return 2
    history = json.loads(path.read_text())
    if not isinstance(history, list) or not history:
        print(f"error: {path} holds no trajectory entries", file=sys.stderr)
        return 2
    print(render_history(history))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
