"""Extension benches: the alternate memory strategies under one roof.

The paper handles storage independently of memory precisely so the memory
strategy can be swapped (Section 4.1); its conclusion asks how the scheme
behaves over post-copy memory.  This bench runs the same hybrid storage
migration over four memory strategies against a hot-set rewriter and
reports time-to-control, total migration time, downtime and memory wire
bytes.
"""

import pytest

from repro.cluster import CloudMiddleware, Cluster
from repro.experiments.config import graphene_spec
from repro.experiments.runner import render_table
from repro.hypervisor.memory import (
    AdaptivePrecopyMemory,
    PostcopyMemory,
    PrecopyMemory,
)
from repro.hypervisor.pagedirty import PageDirtyModel, PageLevelPrecopyMemory
from repro.simkernel import Environment
from repro.workloads.synthetic import HotspotWriter

MB = 2**20


def run_memory_strategy(factory):
    env = Environment()
    cloud = CloudMiddleware(Cluster(env, graphene_spec(8)))
    vm = cloud.deploy("vm0", cloud.cluster.node(0), working_set=768 * MB)
    vm.dirty_rate_base = 90e6  # heavy memory churn alongside the I/O
    wl = HotspotWriter(
        vm, total_bytes=1024 * MB, rate=30e6, op_size=2 * MB,
        region_offset=1024 * MB, region_size=512 * MB, seed=1,
    )
    wl.start()
    done = {}

    def migrator():
        yield env.timeout(3.0)
        done["rec"] = yield cloud.migrate(
            vm, cloud.cluster.node(1), memory=factory(env)
        )

    env.process(migrator())
    env.run()
    rec = done["rec"]
    return {
        "ttc": rec.time_to_control,
        "mig": rec.migration_time,
        "downtime_ms": (rec.downtime or 0) * 1000,
        "memory_mb": rec.memory_bytes / MB,
    }


STRATEGIES = {
    "pre-copy (paper)": lambda env: PrecopyMemory(max_rounds=20),
    "pre-copy + XBZRLE": lambda env: PrecopyMemory(max_rounds=20, delta_ratio=3.0),
    "adaptive (auto-converge)": lambda env: AdaptivePrecopyMemory(max_rounds=40),
    "page-level (hot-set aware)": lambda env: PageLevelPrecopyMemory(
        PageDirtyModel(768 * MB, 90e6, zipf_s=1.3, seed=2), max_rounds=40
    ),
    "post-copy": lambda env: PostcopyMemory(),
}


def test_memory_strategy_matrix(benchmark, results_sink):
    results = benchmark.pedantic(
        lambda: {name: run_memory_strategy(f) for name, f in STRATEGIES.items()},
        rounds=1,
        iterations=1,
    )
    rows = {
        name: [r["ttc"], r["mig"], r["downtime_ms"], r["memory_mb"]]
        for name, r in results.items()
    }
    results_sink(
        "extensions_memory",
        render_table(
            "Extension: memory strategies under the hybrid storage scheme",
            ["time-to-control (s)", "mig time (s)", "downtime (ms)",
             "memory wire (MB)"],
            rows,
        ),
    )
    # Post-copy hands control over almost immediately.
    assert results["post-copy"]["ttc"] < 0.2 * results["pre-copy (paper)"]["ttc"]
    # XBZRLE shrinks memory wire bytes for the same workload.
    assert (
        results["pre-copy + XBZRLE"]["memory_mb"]
        < results["pre-copy (paper)"]["memory_mb"]
    )
    # The page-level model converges (hot-set saturation) with less wire
    # volume than the scalar worst-case model.
    assert (
        results["page-level (hot-set aware)"]["memory_mb"]
        < results["pre-copy (paper)"]["memory_mb"]
    )
    # Every strategy keeps the downtime in the sub-second regime.
    assert all(r["downtime_ms"] < 1000 for r in results.values())
