"""Regenerates Figure 4: 1..30 simultaneous AsyncWR migrations."""

import pytest

from benchmarks.conftest import full_scale, write_csv_series
from repro.experiments.fig4 import render_fig4, run_fig4


@pytest.fixture(scope="module")
def fig4_results():
    return run_fig4(quick=not full_scale())


def _series(results, approach, metric):
    per_level = results[approach]
    return {n: metric(outcome, baseline) for n, (outcome, baseline) in per_level.items()}


def test_fig4a_avg_migration_time(benchmark, fig4_results, results_sink):
    """Panel (a): precopy's average migration time rises sharply with the
    number of concurrent migrations; the others stay comparatively flat
    (small absolute growth)."""
    results = benchmark.pedantic(lambda: fig4_results, rounds=1, iterations=1)
    pre = _series(results, "precopy", lambda o, b: o.avg_migration_time)
    ours = _series(results, "our-approach", lambda o, b: o.avg_migration_time)
    levels = sorted(pre)
    lo, hi = levels[0], levels[-1]
    pre_rise = pre[hi] - pre[lo]
    ours_rise = ours[hi] - ours[lo]
    assert pre_rise > 3 * max(ours_rise, 0.1)
    assert pre[hi] > 1.3 * pre[lo]
    results_sink("fig4", render_fig4(results))
    from repro.experiments.runner import SeriesResult

    for panel, metric in (
        ("fig4a", lambda o, b: o.avg_migration_time),
        ("fig4b", lambda o, b: o.total_traffic()),
        ("fig4c", lambda o, b: o.degradation_vs(b)),
    ):
        series = []
        for approach, per_level in results.items():
            s = SeriesResult(approach)
            for n, (outcome, baseline) in per_level.items():
                s.add(n, metric(outcome, baseline))
            series.append(s)
        write_csv_series(panel, "n_migrations", series)


def test_fig4b_network_traffic(benchmark, fig4_results):
    """Panel (b): precopy's traffic explodes with concurrency; ours and
    postcopy stay lowest among migration-generated traffic."""
    fig4_results = benchmark.pedantic(lambda: fig4_results, rounds=1, iterations=1)
    levels = sorted(fig4_results["precopy"])
    hi = levels[-1]
    traffic = {
        a: fig4_results[a][hi][0].total_traffic() for a in fig4_results
    }
    assert traffic["precopy"] > 3 * traffic["our-approach"]
    assert traffic["postcopy"] <= traffic["our-approach"] * 1.1
    assert traffic["our-approach"] < traffic["mirror"] * 1.1


def test_fig4c_performance_degradation(benchmark, fig4_results):
    """Panel (c): ours degrades computation the least among the
    storage-transferring approaches; precopy the most."""
    fig4_results = benchmark.pedantic(lambda: fig4_results, rounds=1, iterations=1)
    levels = sorted(fig4_results["precopy"])
    hi = levels[-1]
    deg = {
        a: fig4_results[a][hi][0].degradation_vs(fig4_results[a][hi][1])
        for a in fig4_results
    }
    assert deg["precopy"] > 3 * max(deg["our-approach"], 1e-4)
    assert deg["our-approach"] <= deg["mirror"] + 0.005
    assert deg["our-approach"] <= deg["postcopy"] + 0.005
