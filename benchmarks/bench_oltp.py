"""Extra evaluation beyond the paper: OLTP commit latency under migration.

The paper measures sustained throughput; latency-sensitive services care
about the *tail*.  This bench runs a MixedOLTP guest (random reads + a
synchronous commit write per transaction) through one live migration under
each approach and reports p50/p99 commit latency and the transaction rate.

Expected shape, from the strategies' mechanics: mirroring (synchronous
dual writes) and precopy (I/O-thread squeeze) inflate commit latency the
most; ours and postcopy stay near the local baseline; pvfs-shared is slow
throughout (every commit is remote).
"""

import pytest

from repro.cluster import CloudMiddleware, Cluster
from repro.core.registry import APPROACHES
from repro.experiments.config import graphene_spec
from repro.experiments.runner import render_table
from repro.simkernel import Environment
from repro.workloads import MixedOLTP

MB = 2**20


def run_oltp(approach, migrate=True):
    env = Environment()
    cloud = CloudMiddleware(Cluster(env, graphene_spec(8)))
    vm = cloud.deploy("vm0", cloud.cluster.node(0), approach=approach,
                      working_set=256 * MB)
    oltp = MixedOLTP(vm, transactions=400, think_time=0.02, seed=11)
    oltp.start()

    if migrate:

        def migrator():
            yield env.timeout(3.0)
            yield cloud.migrate(vm, cloud.cluster.node(1))

        env.process(migrator())
    env.run()
    return oltp


@pytest.fixture(scope="module")
def oltp_results():
    return {a: run_oltp(a) for a in APPROACHES}


def test_oltp_commit_latency(benchmark, oltp_results, results_sink):
    results = benchmark.pedantic(lambda: oltp_results, rounds=1, iterations=1)
    rows = {
        a: [
            o.commit_latency_quantile(0.5) * 1000,
            o.commit_latency_quantile(0.99) * 1000,
            o.transaction_rate(),
        ]
        for a, o in results.items()
    }
    results_sink(
        "oltp_latency",
        render_table(
            "Extra: OLTP commit latency under one live migration",
            ["p50 (ms)", "p99 (ms)", "txn/s"],
            rows,
        ),
    )
    p99 = {a: o.commit_latency_quantile(0.99) for a, o in results.items()}
    # Mirroring's synchronous dual writes dominate the tail.
    assert p99["mirror"] > p99["our-approach"]
    # The paper's scheme stays close to pure postcopy on the tail.
    assert p99["our-approach"] < 3 * p99["postcopy"] + 1e-3
    # Remote commits are the slowest median of all.
    medians = {a: o.commit_latency_quantile(0.5) for a, o in results.items()}
    assert medians["pvfs-shared"] == max(medians.values())


def test_oltp_throughput_survives_migration(benchmark, oltp_results):
    baseline = benchmark.pedantic(
        lambda: run_oltp("our-approach", migrate=False), rounds=1, iterations=1
    )
    migrated = oltp_results["our-approach"]
    assert migrated.committed == baseline.committed == 400
    # One migration costs only a few percent of transaction rate.
    assert migrated.transaction_rate() > 0.8 * baseline.transaction_rate()
