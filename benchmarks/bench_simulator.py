"""Meta-benchmarks: the simulator's own performance.

Unlike the figure benches (which time one wrapped run for bookkeeping),
these use pytest-benchmark for what it is built for — statistically
meaningful wall-clock timing of the hot paths: the event loop, the
max-min fast path, and a full end-to-end migration.

Every bench runs ``benchmark.pedantic`` with one warmup round and three
timed rounds (pytest-benchmark reports the median), and the per-round
work is sized large enough (tens of thousands of events, batched solver
calls) that events/s is stable against scheduler jitter — the same
regime the ``benchmarks/trajectory.py`` regression gate measures in.
"""

import numpy as np

from repro.netsim.fairness import IncrementalMaxMin
from repro.netsim.topology import Topology
from repro.simkernel import Environment
from repro.simkernel.fluid import FluidShare

#: One discarded warmup round, then the timed rounds whose median
#: pytest-benchmark reports.
WARMUP_ROUNDS = 1
ROUNDS = 3


def test_event_loop_throughput(benchmark):
    """Ping-pong timeout chains: pure kernel overhead per event."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(20000):
                yield env.timeout(1.0)

        for _ in range(4):
            env.process(ticker())
        env.run()
        return env.now

    result = benchmark.pedantic(run, warmup_rounds=WARMUP_ROUNDS,
                                rounds=ROUNDS)
    assert result == 20000.0


def test_fluid_share_churn(benchmark):
    """Arrivals/departures on one fluid resource (disk model hot path)."""

    def run():
        env = Environment()
        share = FluidShare(env, capacity=1e6)

        def spawner():
            for i in range(1500):
                share.transfer(1e4 + (i % 7) * 1e3)
                yield env.timeout(0.003)

        env.process(spawner())
        env.run()
        return share.total_bytes

    total = benchmark.pedantic(run, warmup_rounds=WARMUP_ROUNDS,
                               rounds=ROUNDS)
    assert total > 0


def test_maxmin_fast_path(benchmark):
    """Incremental rate recomputation at fig4 scale (60 hosts, ~90
    flows): a cyclic edit script over 10 flow-set configurations with
    periodic fault-driven invalidations, 500 solves per round — the
    recompute churn a migrating fabric generates (mirrors the
    ``maxmin_fast_path`` trajectory scenario)."""
    rng = np.random.default_rng(1)
    n_hosts, n_flows = 60, 90
    topo = Topology(backplane=2.5e9)
    for i in range(n_hosts):
        topo.add_host(f"h{i}", 117.5e6)
    base_srcs = rng.integers(0, n_hosts, n_flows).astype(np.intp)
    base_dsts = (base_srcs + rng.integers(1, n_hosts, n_flows)) % n_hosts
    base_weights = rng.uniform(0.5, 4.0, n_flows)
    configs = []
    for k in range(10):
        keep = np.ones(n_flows, dtype=bool)
        keep[rng.integers(0, n_flows, size=k)] = False
        configs.append((base_srcs[keep].copy(), base_dsts[keep].copy(),
                        base_weights[keep].copy()))

    def run():
        solver = IncrementalMaxMin(topo)
        rates = None
        for r in range(500):
            if r % 100 == 99:
                host = topo.hosts[r % n_hosts]
                topo.degrade_host(host, 0.5)
                topo.restore_host(host)
            srcs, dsts, weights = configs[r % len(configs)]
            rates = solver.solve(weights, srcs, dsts)
        return rates

    rates = benchmark.pedantic(run, warmup_rounds=WARMUP_ROUNDS,
                               rounds=ROUNDS)
    assert (rates > 0).all()


def test_end_to_end_migration_wall_time(benchmark):
    """A complete hybrid migration under write pressure — the unit of work
    every figure multiplies."""
    from repro.cluster import CloudMiddleware, Cluster
    from repro.experiments.config import graphene_spec
    from repro.workloads.synthetic import SequentialWriter

    MB = 2**20

    def run():
        env = Environment()
        cloud = CloudMiddleware(Cluster(env, graphene_spec(8)))
        vm = cloud.deploy("vm0", cloud.cluster.node(0), working_set=256 * MB)
        SequentialWriter(
            vm, total_bytes=512 * MB, rate=60e6, op_size=4 * MB,
            region_offset=1024 * MB, region_size=512 * MB,
        ).start()
        done = {}

        def migrator():
            yield env.timeout(2.0)
            done["rec"] = yield cloud.migrate(vm, cloud.cluster.node(1))

        env.process(migrator())
        env.run()
        return done["rec"].migration_time

    mig_time = benchmark.pedantic(run, warmup_rounds=WARMUP_ROUNDS,
                                  rounds=ROUNDS)
    assert mig_time > 0
