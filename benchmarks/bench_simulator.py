"""Meta-benchmarks: the simulator's own performance.

Unlike the figure benches (which time one wrapped run for bookkeeping),
these use pytest-benchmark for what it is built for — statistically
meaningful wall-clock timing of the hot paths: the event loop, the
max-min fast path, and a full end-to-end migration.

Every bench runs ``benchmark.pedantic`` with one warmup round and three
timed rounds (pytest-benchmark reports the median), and the per-round
work is sized large enough (tens of thousands of events, batched solver
calls) that events/s is stable against scheduler jitter — the same
regime the ``benchmarks/trajectory.py`` regression gate measures in.
"""

import numpy as np

from repro.netsim.fairness import maxmin_single_switch
from repro.simkernel import Environment
from repro.simkernel.fluid import FluidShare

#: One discarded warmup round, then the timed rounds whose median
#: pytest-benchmark reports.
WARMUP_ROUNDS = 1
ROUNDS = 3


def test_event_loop_throughput(benchmark):
    """Ping-pong timeout chains: pure kernel overhead per event."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(20000):
                yield env.timeout(1.0)

        for _ in range(4):
            env.process(ticker())
        env.run()
        return env.now

    result = benchmark.pedantic(run, warmup_rounds=WARMUP_ROUNDS,
                                rounds=ROUNDS)
    assert result == 20000.0


def test_fluid_share_churn(benchmark):
    """Arrivals/departures on one fluid resource (disk model hot path)."""

    def run():
        env = Environment()
        share = FluidShare(env, capacity=1e6)

        def spawner():
            for i in range(1500):
                share.transfer(1e4 + (i % 7) * 1e3)
                yield env.timeout(0.003)

        env.process(spawner())
        env.run()
        return share.total_bytes

    total = benchmark.pedantic(run, warmup_rounds=WARMUP_ROUNDS,
                               rounds=ROUNDS)
    assert total > 0


def test_maxmin_fast_path(benchmark):
    """Rate recomputations at fig4 scale (60 hosts, 90 flows), batched
    500 to a round so one timing sample spans ~1e5 link visits."""
    rng = np.random.default_rng(1)
    n_hosts, n_flows = 60, 90
    srcs = rng.integers(0, n_hosts, n_flows).astype(np.intp)
    dsts = (srcs + rng.integers(1, n_hosts, n_flows)) % n_hosts
    weights = rng.uniform(0.5, 4.0, n_flows)
    nic = np.full(n_hosts, 117.5e6)

    def run():
        rates = None
        for _ in range(500):
            rates = maxmin_single_switch(weights, srcs, dsts, nic, nic, 2.5e9)
        return rates

    rates = benchmark.pedantic(run, warmup_rounds=WARMUP_ROUNDS,
                               rounds=ROUNDS)
    assert (rates > 0).all()


def test_end_to_end_migration_wall_time(benchmark):
    """A complete hybrid migration under write pressure — the unit of work
    every figure multiplies."""
    from repro.cluster import CloudMiddleware, Cluster
    from repro.experiments.config import graphene_spec
    from repro.workloads.synthetic import SequentialWriter

    MB = 2**20

    def run():
        env = Environment()
        cloud = CloudMiddleware(Cluster(env, graphene_spec(8)))
        vm = cloud.deploy("vm0", cloud.cluster.node(0), working_set=256 * MB)
        SequentialWriter(
            vm, total_bytes=512 * MB, rate=60e6, op_size=4 * MB,
            region_offset=1024 * MB, region_size=512 * MB,
        ).start()
        done = {}

        def migrator():
            yield env.timeout(2.0)
            done["rec"] = yield cloud.migrate(vm, cloud.cluster.node(1))

        env.process(migrator())
        env.run()
        return done["rec"].migration_time

    mig_time = benchmark.pedantic(run, warmup_rounds=WARMUP_ROUNDS,
                                  rounds=ROUNDS)
    assert mig_time > 0
