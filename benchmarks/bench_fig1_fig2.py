"""Regenerates the paper's diagrams from live objects: Figure 1 (the
architecture inventory) and Figure 2 (the protocol timeline)."""

from repro.cluster import CloudMiddleware, Cluster
from repro.experiments.config import graphene_spec
from repro.experiments.fig1 import render_fig1, run_fig1
from repro.experiments.fig2 import render_fig2, run_fig2
from repro.simkernel import Environment


def test_fig1_architecture(benchmark, results_sink):
    def build():
        env = Environment()
        cluster = Cluster(env, graphene_spec(6))
        cloud = CloudMiddleware(cluster)
        cloud.deploy("vm0", cluster.node(0), approach="our-approach")
        cloud.deploy("vm1", cluster.node(1), approach="pvfs-shared")
        return cluster, cloud

    cluster, cloud = benchmark(build)
    inv = run_fig1(cluster, cloud)
    # Every dark-background box of the paper's Figure 1 exists and is wired.
    assert len(inv["compute_nodes"]) == 6
    assert inv["shared_repository"]["kind"] == "StripedRepository"
    assert inv["vms"]["vm0"]["manager"] == "our-approach"
    assert inv["vms"]["vm1"]["manager"] == "pvfs-shared"
    results_sink("fig1", render_fig1(cluster, cloud))


def test_fig2_protocol_timeline(benchmark, results_sink):
    record, stats, traffic = benchmark.pedantic(
        run_fig2, rounds=1, iterations=1
    )
    names = [name for name, _, _ in record.phases]
    # The phases of the paper's Figure 2, in order.
    assert names == [
        "request/setup",
        "memory + push",
        "sync",
        "downtime",
        "pull / post-control",
    ]
    # Active phase: chunks were pushed while memory moved; passive phase:
    # the destination prefetched the remainder.
    assert stats["source"]["pushed_chunks"] > 0
    assert stats["destination"]["pulled_chunks"] > 0
    assert traffic["memory"] > 0 and traffic["storage-push"] > 0
    results_sink("fig2", render_fig2())
