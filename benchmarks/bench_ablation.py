"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate the *mechanisms* the paper
argues for: the write-count Threshold, the prioritized prefetch order, the
push phase itself, and repository striping.
"""

import pytest

from repro.core.config import MigrationConfig
from repro.experiments.runner import render_table
from repro.experiments.scenarios import run_single_migration

from benchmarks.conftest import write_result

QUICK_IOR = dict(iterations=4, file_size=256 * 2**20, op_size=8 * 2**20)


def _run(approach="our-approach", config=None, **kwargs):
    params = dict(
        workload="ior", warmup=2.0, workload_kwargs=QUICK_IOR, config=config
    )
    params.update(kwargs)
    return run_single_migration(approach, **params)


def test_threshold_sweep(benchmark, results_sink):
    """Sweeping the write-count Threshold: higher thresholds push hot
    chunks repeatedly (more traffic); the migration still completes and
    traffic grows monotonically-ish with the bound."""

    def sweep():
        out = {}
        for thr in (1, 2, 3, 5):
            o = _run(config=MigrationConfig(threshold=thr))
            out[thr] = o
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = {
        f"threshold={t}": [
            o.migration_time,
            o.total_traffic() / 2**20,
            o.traffic_by_tag.get("storage-push", 0) / 2**20,
        ]
        for t, o in results.items()
    }
    results_sink(
        "ablation_threshold",
        render_table(
            "Ablation: write-count Threshold (IOR, quick)",
            ["mig time (s)", "total (MB)", "push (MB)"],
            rows,
        ),
    )
    push = {t: o.traffic_by_tag.get("storage-push", 0) for t, o in results.items()}
    # A larger threshold never pushes less.
    assert push[5] >= push[1]


def _prefetch_scenario(policy):
    """Cold 256 MB + a hot 64 MB tail rewritten during migration; after
    control the guest reads the hot tail.  Write-count priority fetches
    the tail first; FIFO fetches it last (it has the highest chunk ids),
    so the read pays for on-demand pulls."""
    from repro.cluster import CloudMiddleware, Cluster
    from repro.experiments.config import graphene_spec
    from repro.simkernel import Environment

    MB = 2**20
    env = Environment()
    cloud = CloudMiddleware(
        Cluster(env, graphene_spec(8)),
        config=MigrationConfig(prefetch_policy=policy, threshold=1),
    )
    vm = cloud.deploy("vm0", cloud.cluster.node(0), working_set=256 * MB)
    out = {}

    def proc():
        # A cold body too large for the push to cover before control, plus
        # a hot tail rewritten during the migration: both stay in the
        # remaining set, with very different write counts.
        yield from vm.write(512 * MB, 1536 * MB)
        mig = cloud.migrate(vm, cloud.cluster.node(1))

        def hot_writer():
            yield env.timeout(0.1)
            for _ in range(3):
                yield from vm.write(512 * MB + 1536 * MB, 64 * MB)

        def reader():
            while not vm.manager.is_destination:
                yield env.timeout(0.02)
            t0 = env.now
            yield from vm.read(512 * MB + 1536 * MB, 64 * MB)
            out["read_time"] = env.now - t0

        env.process(hot_writer())
        env.process(reader())
        rec = yield mig
        out["mig_time"] = rec.migration_time

    env.process(proc())
    env.run()
    out["ondemand"] = vm.manager.stats["ondemand_chunks"]
    return out


def test_prefetch_policy(benchmark, results_sink):
    """Prefetch order: the paper's write-count priority fetches hot chunks
    first, so a post-control read of hot data beats FIFO order."""

    def sweep():
        return {p: _prefetch_scenario(p) for p in ("writecount", "fifo", "random")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = {
        p: [r["mig_time"], r["read_time"], r["ondemand"]]
        for p, r in results.items()
    }
    results_sink(
        "ablation_prefetch",
        render_table(
            "Ablation: prefetch policy (hot-tail read after control)",
            ["mig time (s)", "hot read (s)", "on-demand chunks"],
            rows,
        ),
    )
    assert results["writecount"]["read_time"] <= results["fifo"]["read_time"]


def test_push_phase(benchmark, results_sink):
    """The push phase on/off = our-approach vs postcopy on identical
    inputs: with a settled modified set, the push moves everything before
    control and the pull phase nearly vanishes."""
    from repro.workloads.synthetic import SequentialWriter

    MB = 2**20

    def run_one(approach):
        from repro.cluster import CloudMiddleware, Cluster
        from repro.experiments.config import graphene_spec
        from repro.simkernel import Environment

        env = Environment()
        cloud = CloudMiddleware(Cluster(env, graphene_spec(8)))
        vm = cloud.deploy("vm0", cloud.cluster.node(0), approach=approach,
                          working_set=256 * MB)
        wl = SequentialWriter(
            vm, total_bytes=512 * MB, rate=100e6, op_size=8 * MB,
            region_offset=512 * MB, region_size=512 * MB,
        )
        wl.start()
        done = {}

        def migrator():
            yield env.timeout(6.0)
            done["rec"] = yield cloud.migrate(vm, cloud.cluster.node(1))

        env.process(migrator())
        env.run()
        o = done["rec"]
        return {
            "mig_time": o.migration_time,
            "pull": cloud.cluster.fabric.meter.bytes("storage-pull"),
            "push": cloud.cluster.fabric.meter.bytes("storage-push"),
        }

    def run_pair():
        return {
            "push on (ours)": run_one("our-approach"),
            "push off (postcopy)": run_one("postcopy"),
        }

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = {
        name: [r["mig_time"], r["push"] / 2**20, r["pull"] / 2**20]
        for name, r in results.items()
    }
    results_sink(
        "ablation_push",
        render_table(
            "Ablation: push phase (512 MB settled working data)",
            ["mig time (s)", "push (MB)", "pull (MB)"],
            rows,
        ),
    )
    ours = results["push on (ours)"]
    post = results["push off (postcopy)"]
    # The push covers whatever the pre-control window allows; the pull
    # volume must shrink accordingly.
    assert ours["pull"] < 0.75 * post["pull"]
    assert ours["push"] > 0 and post["push"] == 0


def test_striping(benchmark, results_sink):
    """Repository striping: first-touch of the base image from a striped
    repository vs a repository with one effective server (replication and
    striping collapse onto node0)."""
    from repro.cluster import CloudMiddleware, Cluster
    from repro.experiments.config import graphene_spec
    from repro.simkernel import Environment

    def first_touch(n_servers):
        env = Environment()
        cluster = Cluster(env, graphene_spec(8))
        # Restrict the repository to the first n_servers hosts.
        cluster.repository.servers = [
            n.host for n in cluster.nodes[:n_servers]
        ]
        cloud = CloudMiddleware(cluster)
        vms = [
            cloud.deploy(f"vm{i}", cluster.node(i + 1), approach="our-approach")
            for i in range(4)
        ]
        done = []

        def reader(vm):
            yield from vm.read(0, 512 * 2**20)
            done.append(env.now)

        for vm in vms:
            env.process(reader(vm))
        env.run()
        return max(done)

    def sweep():
        return {"striped (7 servers)": first_touch(7), "single server": first_touch(1)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    results_sink(
        "ablation_striping",
        render_table(
            "Ablation: repository striping, 4 concurrent cold reads of 512 MB",
            ["completion (s)"],
            {k: [v] for k, v in results.items()},
        ),
    )
    assert results["striped (7 servers)"] < results["single server"]


def test_codec(benchmark, results_sink):
    """Future-work codec: compression and dedup against the plain scheme,
    same IOR run.  Compression cuts wire bytes ~2x; dedup wins only when
    the content is redundant."""

    def sweep():
        out = {}
        out["plain"] = _run(config=MigrationConfig())
        out["compress 2x"] = _run(config=MigrationConfig(compression_ratio=2.0))
        out["dedup (unique content)"] = _run(config=MigrationConfig(dedup=True))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = {
        name: [
            o.migration_time,
            (o.traffic_by_tag.get("storage-push", 0)
             + o.traffic_by_tag.get("storage-pull", 0)) / 2**20,
        ]
        for name, o in results.items()
    }
    results_sink(
        "ablation_codec",
        render_table(
            "Ablation: transfer codec (IOR, quick)",
            ["mig time (s)", "storage wire (MB)"],
            rows,
        ),
    )

    def wire(o):
        return (o.traffic_by_tag.get("storage-push", 0)
                + o.traffic_by_tag.get("storage-pull", 0))

    assert wire(results["compress 2x"]) < 0.7 * wire(results["plain"])
    # Dedup on unique content costs only reference overhead.
    assert wire(results["dedup (unique content)"]) == pytest.approx(
        wire(results["plain"]), rel=0.02
    )
