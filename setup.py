"""Legacy setup shim.

The environment ships setuptools without the ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build; ``python setup.py
develop`` installs the same editable package without needing wheel.
"""

from setuptools import setup

setup()
